(** Order-preserving binary encodings and low-level byte helpers.

    All index keys in this project are byte strings compared with
    [String.compare] (i.e. unsigned byte-wise lexicographic order).  The
    encoders here guarantee that the byte order of the encodings matches the
    natural order of the encoded values, which is what lets a single B-tree
    serve as a composite-key index. *)

val put_u16 : Bytes.t -> int -> int -> unit
(** [put_u16 b off v] writes [v] (0..65535) big-endian at [off]. *)

val get_u16 : Bytes.t -> int -> int
(** [get_u16 b off] reads a big-endian unsigned 16-bit value. *)

val put_u32 : Bytes.t -> int -> int -> unit
(** [put_u32 b off v] writes [v] (0..2^32-1) big-endian at [off]. *)

val get_u32 : Bytes.t -> int -> int
(** [get_u32 b off] reads a big-endian unsigned 32-bit value. *)

val encode_int : int -> string
(** [encode_int x] is an 8-byte order-preserving encoding of [x]: for any
    [a], [b], [compare a b] equals [String.compare (encode_int a)
    (encode_int b)].  Works over the full OCaml [int] range, negative
    included. *)

val decode_int : string -> int -> int
(** [decode_int s off] inverts {!encode_int} at offset [off]. *)

val encode_u32 : int -> string
(** [encode_u32 x] is a 4-byte big-endian encoding of [x] (0..2^32-1);
    order-preserving over that range.  Used for OIDs and page references
    (both 4 bytes in the paper's experiments). *)

val decode_u32 : string -> int -> int
(** [decode_u32 s off] inverts {!encode_u32} at offset [off]. *)

val succ_prefix : string -> string
(** [succ_prefix p] is the smallest byte string greater than every string
    that starts with [p] (trailing [0xff] bytes dropped, last byte
    incremented).  Raises [Invalid_argument] when [p] is all [0xff]. *)

val common_prefix_len : string -> string -> int
(** [common_prefix_len a b] is the length of the longest common prefix of
    [a] and [b]. *)

val match_len : Bytes.t -> int -> string -> int -> int -> int
(** [match_len b boff s soff len] is the number of equal leading bytes of
    [b.[boff..]] and [s.[soff..]], at most [len].  The ranges must lie
    inside their buffers (unchecked); this is the allocation-free inner
    loop of the compare-in-place node search. *)

val fnv32 : ?init:int -> Bytes.t -> int -> int -> int
(** [fnv32 b off len] is the 32-bit FNV-1a hash of [len] bytes of [b]
    starting at [off]; pass a previous result as [init] to chain ranges.
    Used as the torn-write checksum of page-file headers and journals. *)

val check_text : string -> string
(** [check_text s] returns [s] if every byte of [s] is [>= 0x08], else
    raises [Invalid_argument].  Textual key components must stay above the
    control bytes the key encoders reserve as separators. *)
