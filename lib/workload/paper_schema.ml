module Schema = Oodb_schema.Schema
module Encoding = Oodb_schema.Encoding
module Store = Objstore.Store
module Value = Objstore.Value

type t = {
  schema : Schema.t;
  enc : Encoding.t;
  employee : Schema.class_id;
  company : Schema.class_id;
  city : Schema.class_id;
  division : Schema.class_id;
  vehicle : Schema.class_id;
  auto_company : Schema.class_id;
  truck_company : Schema.class_id;
  japanese_auto_company : Schema.class_id;
  automobile : Schema.class_id;
  compact : Schema.class_id;
  truck : Schema.class_id;
}

let colors = [| "Red"; "Blue"; "Green"; "White"; "Black" |]

let base () =
  let s = Schema.create () in
  (* declaration order matches the paper's C1..C5 via the topological
     tie-break *)
  let employee = Schema.add_class s ~name:"Employee" ~attrs:[ ("age", Schema.Int); ("name", Schema.String) ] in
  let company =
    Schema.add_class s ~name:"Company"
      ~attrs:[ ("name", Schema.String); ("president", Schema.Ref employee) ]
  in
  let city = Schema.add_class s ~name:"City" ~attrs:[ ("name", Schema.String) ] in
  let division =
    Schema.add_class s ~name:"Division"
      ~attrs:
        [
          ("name", Schema.String);
          ("belongs_to", Schema.Ref company);
          ("located_in", Schema.Ref city);
        ]
  in
  let vehicle =
    Schema.add_class s ~name:"Vehicle"
      ~attrs:
        [
          ("name", Schema.String);
          ("color", Schema.String);
          ("weight", Schema.Int);
          ("manufactured_by", Schema.Ref company);
        ]
  in
  let auto_company = Schema.add_class s ~parent:company ~name:"AutoCompany" ~attrs:[] in
  let truck_company = Schema.add_class s ~parent:company ~name:"TruckCompany" ~attrs:[] in
  let japanese_auto_company =
    Schema.add_class s ~parent:auto_company ~name:"JapaneseAutoCompany" ~attrs:[]
  in
  let automobile = Schema.add_class s ~parent:vehicle ~name:"Automobile" ~attrs:[] in
  let compact = Schema.add_class s ~parent:automobile ~name:"CompactAutomobile" ~attrs:[] in
  let truck = Schema.add_class s ~parent:vehicle ~name:"Truck" ~attrs:[] in
  let enc = Encoding.assign s in
  {
    schema = s;
    enc;
    employee;
    company;
    city;
    division;
    vehicle;
    auto_company;
    truck_company;
    japanese_auto_company;
    automobile;
    compact;
    truck;
  }

type extended = {
  b : t;
  foreign_auto : Schema.class_id;
  service_auto : Schema.class_id;
  heavy_truck : Schema.class_id;
  light_truck : Schema.class_id;
  bus : Schema.class_id;
  military_bus : Schema.class_id;
  tourist_bus : Schema.class_id;
  passenger_bus : Schema.class_id;
}

let extended () =
  let b = base () in
  let s = b.schema in
  let add ?parent name =
    let id = Schema.add_class s ?parent ~name ~attrs:[] in
    Encoding.assign_new_class b.enc id;
    id
  in
  let foreign_auto = add ~parent:b.automobile "ForeignAuto" in
  let service_auto = add ~parent:b.automobile "ServiceAuto" in
  let heavy_truck = add ~parent:b.truck "HeavyTruck" in
  let light_truck = add ~parent:b.truck "LightTruck" in
  let bus = add ~parent:b.vehicle "Bus" in
  let military_bus = add ~parent:bus "MilitaryBus" in
  let tourist_bus = add ~parent:bus "TouristBus" in
  let passenger_bus = add ~parent:bus "PassengerBus" in
  {
    b;
    foreign_auto;
    service_auto;
    heavy_truck;
    light_truck;
    bus;
    military_bus;
    tourist_bus;
    passenger_bus;
  }

let vehicle_leaf_classes e =
  [|
    e.b.vehicle;
    e.b.automobile;
    e.b.compact;
    e.foreign_auto;
    e.service_auto;
    e.b.truck;
    e.heavy_truck;
    e.light_truck;
    e.bus;
    e.military_bus;
    e.tourist_bus;
    e.passenger_bus;
  |]

type example1 = {
  store : Store.t;
  v1 : int; v2 : int; v3 : int; v4 : int; v5 : int; v6 : int;
  c1 : int; c2 : int; c3 : int;
  e1 : int; e2 : int; e3 : int;
}

let example1 b =
  let st = Store.create b.schema in
  let emp name age =
    Store.insert st ~cls:b.employee
      [ ("name", Value.Str name); ("age", Value.Int age) ]
  in
  let e1 = emp "Elena" 50 and e2 = emp "Enzo" 60 and e3 = emp "Eiji" 45 in
  let comp cls name president =
    Store.insert st ~cls
      [ ("name", Value.Str name); ("president", Value.Ref president) ]
  in
  let c1 = comp b.japanese_auto_company "Subaru" e3
  and c2 = comp b.auto_company "Fiat" e1
  and c3 = comp b.auto_company "Renault" e2 in
  let veh cls name color maker =
    Store.insert st ~cls
      [
        ("name", Value.Str name);
        ("color", Value.Str color);
        ("manufactured_by", Value.Ref maker);
      ]
  in
  let v1 = veh b.vehicle "Legacy" "White" c1
  and v2 = veh b.automobile "Tipo" "White" c2
  and v3 = veh b.automobile "Panda" "Red" c2
  and v4 = veh b.compact "R5" "Red" c3
  and v5 = veh b.compact "Justy" "Blue" c1
  and v6 = veh b.compact "Uno" "White" c2 in
  { store = st; v1; v2; v3; v4; v5; v6; c1; c2; c3; e1; e2; e3 }
