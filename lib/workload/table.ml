let fmt_f x = Printf.sprintf "%.1f" x

let render ~header ~rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width i =
    List.fold_left
      (fun m r -> max m (match List.nth_opt r i with Some c -> String.length c | None -> 0))
      0 all
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 256 in
  let put_row r =
    List.iteri
      (fun i w ->
        let cell = match List.nth_opt r i with Some c -> c | None -> "" in
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (w - String.length cell + 2) ' '))
      widths;
    Buffer.add_char buf '\n'
  in
  put_row header;
  Buffer.add_string buf
    (String.make (List.fold_left ( + ) 0 widths + (2 * (ncols - 1))) '-');
  Buffer.add_char buf '\n';
  List.iter put_row rows;
  Buffer.contents buf

let render_series ~title ~x_label ~series =
  let xs =
    List.concat_map (fun (_, pts) -> List.map fst pts) series
    |> List.sort_uniq compare
  in
  let header = x_label :: List.map fst series in
  let rows =
    List.map
      (fun x ->
        string_of_int x
        :: List.map
             (fun (_, pts) ->
               match List.assoc_opt x pts with
               | Some y -> fmt_f y
               | None -> "-")
             series)
      xs
  in
  Printf.sprintf "%s\n%s" title (render ~header ~rows)
