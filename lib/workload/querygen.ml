type placement = Near | Distant | Random

let pick_sets rng placement ~classes ~k =
  let n = Array.length classes in
  if k > n then invalid_arg "Querygen.pick_sets: more sets than classes";
  let indices =
    match placement with
    | Near ->
        let start = Rng.int rng (n - k + 1) in
        List.init k (fun i -> start + i)
    | Distant ->
        let stride = max 1 (n / k) in
        let offset = Rng.int rng (max 1 (n - ((k - 1) * stride))) in
        List.init k (fun i -> offset + (i * stride))
    | Random -> Rng.sample_distinct rng k n
  in
  List.map (fun i -> classes.(i)) indices

let exact_value rng ~distinct_keys = Rng.int rng distinct_keys

let range_bounds rng ~distinct_keys ~frac =
  let width = max 1 (int_of_float (frac *. float_of_int distinct_keys)) in
  let lo = Rng.int rng (max 1 (distinct_keys - width + 1)) in
  (lo, lo + width - 1)

let union_of_classes sets =
  Uindex.Query.P_union (List.map (fun c -> Uindex.Query.P_class c) sets)
