(** Random query generation for the experiments: which sets (classes) a
    query touches and which key values it asks for. *)

module Schema := Oodb_schema.Schema

type placement =
  | Near  (** adjacent in the class hierarchy's pre-order (clustered) *)
  | Distant  (** spread as far apart as possible *)
  | Random  (** uniform — used for the CG-tree, where adjacency is
                irrelevant (Section 5.1) *)

val pick_sets :
  Rng.t -> placement -> classes:Schema.class_id array -> k:int ->
  Schema.class_id list
(** [k] distinct classes placed according to [placement].  For [Distant],
    when [k > n/2] true separation is impossible (as the paper notes) and
    the selection degrades gracefully to maximum spread. *)

val exact_value : Rng.t -> distinct_keys:int -> int
(** A uniform key value. *)

val range_bounds : Rng.t -> distinct_keys:int -> frac:float -> int * int
(** Inclusive bounds of a range covering [frac] of the key space
    (e.g. [0.10], [0.02], [0.005], [0.002]). *)

val union_of_classes : Schema.class_id list -> Uindex.Query.class_pat
