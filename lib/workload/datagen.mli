(** Random database generation for the paper's two experiments
    (Section 5).  The authors' actual data is not published; these
    generators reproduce every stated parameter (sizes, distributions,
    page and field widths) from a seed. *)

module Schema := Oodb_schema.Schema
module Encoding := Oodb_schema.Encoding

(** {1 Experiment 1 — the vehicle database}

    12,000 vehicle records over the extended Fig. 1 hierarchy, plus
    companies and employees for the path and combined queries; B-tree
    nodes hold at most [m = 10] records. *)

type exp1 = {
  ext : Paper_schema.extended;
  store : Objstore.Store.t;
  ch_color : Uindex.Index.t;  (** class-hierarchy index on Vehicle.color *)
  path_age : Uindex.Index.t;
      (** path index Vehicle.manufactured_by.president.age *)
}

val exp1 : ?n_vehicles:int -> ?n_companies:int -> ?n_employees:int ->
  seed:int -> unit -> exp1

(** {1 Experiment 2 — U-index vs CG-trees}

    150,000 objects uniform over an 8- or 40-class hierarchy; 4-byte
    OIDs; 8-byte integer keys with 100 / 1,000 / 150,000 distinct values;
    1,024-byte pages. *)

type exp2_config = {
  n_objects : int;
  n_classes : int;
  distinct_keys : int;  (** [= n_objects] for the unique-key case *)
  page_size : int;
  seed : int;
}

val default_exp2 : n_classes:int -> distinct_keys:int -> exp2_config

type exp2 = {
  cfg : exp2_config;
  schema : Schema.t;
  enc : Encoding.t;
  root : Schema.class_id;
  classes : Schema.class_id array;  (** pre-order (= code order) *)
  entries : (int * Schema.class_id * int) array;  (** (key, class, oid) *)
  uindex : Uindex.Index.t;
  cg : Baselines.Cg_tree.t;
}

val exp2 : exp2_config -> exp2
(** Generates the data and builds both structures (each on its own
    pager). *)

val hierarchy : n_classes:int -> Schema.t * Schema.class_id * Schema.class_id array
(** The class hierarchy used by experiment 2: a root with branching
    factor 3, [n_classes] classes in total; the returned array is in
    pre-order. *)

(** {1 Path workloads — U-index vs NIX vs nested/path indexes}

    The Section 4.4 comparison: one Vehicle→Company→Employee database
    indexed four ways. *)

type path_db = {
  e1 : exp1;
  nix : Baselines.Nix.t;
  bk_path : Baselines.Path_index.t;  (** Bertino–Kim path index *)
  bk_nested : Baselines.Path_index.t;  (** Bertino–Kim nested index *)
}

val path_db :
  ?n_vehicles:int -> ?n_companies:int -> ?n_employees:int -> seed:int ->
  unit -> path_db
(** Builds {!exp1} and additionally loads the same path instantiations
    into a NIX, a path index and a nested index (each on its own
    pager). *)
