(** Deterministic pseudo-random numbers (splitmix64).

    All experiment randomness flows through explicit [Rng.t] values so
    every run is reproducible from its seed; the paper averages 100
    random repetitions per configuration. *)

type t

val create : int -> t
val split : t -> t
(** An independent stream derived from this one. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t k bound]: [k] distinct ints in [0, bound), sorted.
    Raises [Invalid_argument] if [k > bound]. *)

val shuffle : t -> 'a array -> unit
