type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let sample_distinct t k bound =
  if k > bound then invalid_arg "Rng.sample_distinct: k > bound";
  if 3 * k >= bound then begin
    (* dense case: partial Fisher-Yates over the whole domain *)
    let a = Array.init bound Fun.id in
    for i = 0 to k - 1 do
      let j = i + int t (bound - i) in
      let x = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- x
    done;
    Array.sub a 0 k |> Array.to_list |> List.sort compare
  end
  else begin
    let seen = Hashtbl.create k in
    let rec draw n acc =
      if n = 0 then List.sort compare acc
      else
        let x = int t bound in
        if Hashtbl.mem seen x then draw n acc
        else begin
          Hashtbl.add seen x ();
          draw (n - 1) (x :: acc)
        end
    in
    draw k []
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  done
