(** The paper's experiments (Section 5), as runnable drivers.

    Experiment 1 (Table 1): visited-node counts for the twenty queries on
    the 12,000-record vehicle database, under both retrieval algorithms.

    Experiment 2 (Figures 5–8): average page reads of the U-index
    (near / non-near query sets) and the CG-tree over 100 random
    repetitions, for exact-match and range queries. *)

type t1_row = {
  id : string;
  descr : string;
  results : int;  (** bindings returned (sanity) *)
  parallel : int;  (** visited nodes, Algorithm 1 *)
  forward : int;  (** visited nodes, naive forward scanning *)
}

val table1 : Datagen.exp1 -> t1_row list
val render_table1 : t1_row list -> string

type query_kind = Exact | Range of float
(** [Range f]: the search range comprises fraction [f] of the key
    space. *)

val figure_series :
  Datagen.exp2 ->
  kind:query_kind ->
  set_counts:int list ->
  reps:int ->
  seed:int ->
  (string * (int * float) list) list
(** The three series of one figure panel: ["B-tree (near sets)"],
    ["B-tree (non-near sets)"], ["CG-tree"]; x = number of sets queried,
    y = average page reads.  Set choices and key values are drawn per
    repetition from [seed]. *)

val u_page_reads : Datagen.exp2 -> Uindex.Query.t -> int * int
(** [(page_reads, results)] of one parallel-algorithm query on the
    experiment's U-index. *)

val cg_page_reads :
  Datagen.exp2 -> kind:query_kind -> lo:int -> hi:int -> sets:int list ->
  int * int
(** [(page_reads, results)] of one CG-tree query. *)
