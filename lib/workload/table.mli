(** Plain-text rendering of result tables and figure series. *)

val render : header:string list -> rows:string list list -> string
(** Column-aligned table with a rule under the header. *)

val render_series :
  title:string -> x_label:string -> series:(string * (int * float) list) list ->
  string
(** One row per x value, one column per named series (the layout of the
    paper's figures as numbers). *)

val fmt_f : float -> string
(** One decimal place. *)
