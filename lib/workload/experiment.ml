module Value = Objstore.Value
module Stats = Storage.Stats
module Pager = Storage.Pager
module Query = Uindex.Query
module Exec = Uindex.Exec
module Index = Uindex.Index

(* --- experiment 1: Table 1 ------------------------------------------------- *)

type t1_row = {
  id : string;
  descr : string;
  results : int;
  parallel : int;
  forward : int;
}

let run_row idx id descr q =
  let p = Exec.parallel idx q and f = Exec.forward idx q in
  assert (List.length p.bindings = List.length f.bindings);
  {
    id;
    descr;
    results = List.length p.bindings;
    parallel = p.page_reads;
    forward = f.page_reads;
  }

let color_variants = [ ("", None); ("a", Some [ "Red" ]); ("b", Some [ "Red"; "Blue" ]); ("c", Some [ "Red"; "Blue"; "Green" ]) ]

let value_pred_of = function
  | None -> Query.V_any
  | Some [ c ] -> Query.V_eq (Value.Str c)
  | Some cs -> Query.V_in (List.map (fun c -> Value.Str c) cs)

let descr_of_colors = function
  | None -> "all colors"
  | Some cs -> String.concat "+" cs

let table1 (e : Datagen.exp1) =
  let b = e.ext.b in
  let ch_rows base_id descr pat =
    List.map
      (fun (suffix, colors) ->
        run_row e.ch_color (base_id ^ suffix)
          (Printf.sprintf "%s, %s" descr (descr_of_colors colors))
          (Query.class_hierarchy ~value:(value_pred_of colors) pat))
      color_variants
  in
  let q1 = ch_rows "1" "all Buses (subtree)" (P_subtree e.ext.bus) in
  let q2 =
    ch_rows "2" "all PassengerBuses (subtree)" (P_subtree e.ext.passenger_bus)
  in
  let q3 = ch_rows "3" "Automobiles (subtree)" (P_subtree b.automobile) in
  let q4 =
    ch_rows "4" "Compact or Service automobiles"
      (P_union [ P_subtree b.compact; P_subtree e.ext.service_auto ])
  in
  let partial value =
    Query.path ~value
      [ Query.comp (P_subtree b.employee); Query.comp (P_subtree b.company) ]
  in
  let q5 =
    [
      run_row e.path_age "5a" "companies with president age = 50"
        (partial (V_eq (Int 50)));
      run_row e.path_age "5b" "companies with president age > 50"
        (partial (V_range (Some (Int 51), Some (Int 70))));
    ]
  in
  let combined head_pat =
    Query.path
      ~value:(V_range (Some (Int 51), Some (Int 70)))
      [
        Query.comp (P_subtree b.employee);
        Query.comp (P_subtree b.auto_company);
        Query.comp head_pat;
      ]
  in
  let q6 =
    [
      run_row e.path_age "6a"
        "Automobiles by AutoCompanies, president age > 50"
        (combined (P_subtree b.automobile));
      run_row e.path_age "6b" "Trucks by AutoCompanies, president age > 50"
        (combined (P_subtree b.truck));
    ]
  in
  q1 @ q2 @ q3 @ q4 @ q5 @ q6

let render_table1 rows =
  Table.render
    ~header:[ "query"; "description"; "results"; "parallel"; "forward" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.id;
             r.descr;
             string_of_int r.results;
             string_of_int r.parallel;
             string_of_int r.forward;
           ])
         rows)

(* --- experiment 2: figures 5-8 --------------------------------------------- *)

type query_kind = Exact | Range of float

let measured stats f =
  Stats.reset stats;
  let results = f () in
  (stats.Stats.reads, results)

let u_query (_e : Datagen.exp2) ~lo ~hi ~sets =
  let value =
    if lo = hi then Query.V_eq (Value.Int lo)
    else Query.V_range (Some (Value.Int lo), Some (Value.Int hi))
  in
  Query.class_hierarchy ~value (Querygen.union_of_classes sets)

let u_page_reads (e : Datagen.exp2) q =
  let o = Exec.parallel e.uindex q in
  (o.page_reads, List.length o.bindings)

let cg_page_reads (e : Datagen.exp2) ~kind ~lo ~hi ~sets =
  let stats = Pager.stats (Baselines.Cg_tree.pager e.cg) in
  measured stats (fun () ->
      match kind with
      | Exact -> List.length (Baselines.Cg_tree.exact e.cg ~value:(Value.Int lo) ~sets)
      | Range _ ->
          List.length
            (Baselines.Cg_tree.range e.cg ~lo:(Value.Int lo) ~hi:(Value.Int hi)
               ~sets))

let bounds_of rng (e : Datagen.exp2) = function
  | Exact ->
      let v = Querygen.exact_value rng ~distinct_keys:e.cfg.distinct_keys in
      (v, v)
  | Range frac ->
      Querygen.range_bounds rng ~distinct_keys:e.cfg.distinct_keys ~frac

let figure_series (e : Datagen.exp2) ~kind ~set_counts ~reps ~seed =
  let point placement structure k =
    let rng = Rng.create (seed + k + (1000 * Hashtbl.hash (placement, structure))) in
    let total = ref 0 in
    for _ = 1 to reps do
      let sets = Querygen.pick_sets rng placement ~classes:e.classes ~k in
      let lo, hi = bounds_of rng e kind in
      let reads =
        match structure with
        | `U -> fst (u_page_reads e (u_query e ~lo ~hi ~sets))
        | `Cg -> fst (cg_page_reads e ~kind ~lo ~hi ~sets)
      in
      total := !total + reads
    done;
    float_of_int !total /. float_of_int reps
  in
  [
    ( "B-tree (near sets)",
      List.map (fun k -> (k, point Querygen.Near `U k)) set_counts );
    ( "B-tree (non-near sets)",
      List.map (fun k -> (k, point Querygen.Distant `U k)) set_counts );
    ( "CG-tree",
      List.map (fun k -> (k, point Querygen.Random `Cg k)) set_counts );
  ]
