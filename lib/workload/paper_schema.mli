(** The paper's running example: the Fig. 1 vehicle/company/employee
    schema, its Section 5 extensions, and the Example 1 instance
    database. *)

module Schema := Oodb_schema.Schema
module Encoding := Oodb_schema.Encoding
module Store := Objstore.Store

type t = {
  schema : Schema.t;
  enc : Encoding.t;
  (* hierarchy roots *)
  employee : Schema.class_id;
  company : Schema.class_id;
  city : Schema.class_id;
  division : Schema.class_id;
  vehicle : Schema.class_id;
  (* company subclasses *)
  auto_company : Schema.class_id;
  truck_company : Schema.class_id;
  japanese_auto_company : Schema.class_id;
  (* vehicle subclasses (Fig. 1) *)
  automobile : Schema.class_id;
  compact : Schema.class_id;
  truck : Schema.class_id;
}

val base : unit -> t
(** Fig. 1 as in Section 2: Vehicle {v name color manufactured_by v},
    Company {v name president v}, Employee {v age v}, Division, City,
    with the REF edges of the paper.  Codes are assigned; the REF
    topology forces Employee < Company < City' ... exactly one valid
    family of orders (the paper's C1..C5 up to renaming). *)

type extended = {
  b : t;
  (* the nine extra classes of the first experiment (Section 5) *)
  foreign_auto : Schema.class_id;
  service_auto : Schema.class_id;
  heavy_truck : Schema.class_id;
  light_truck : Schema.class_id;
  bus : Schema.class_id;
  military_bus : Schema.class_id;
  tourist_bus : Schema.class_id;
  passenger_bus : Schema.class_id;
}

val extended : unit -> extended
(** [base] plus the Section 5 additions: ForeignAuto, ServiceAuto under
    Automobile; HeavyTruck, LightTruck under Truck; Bus with MilitaryBus,
    TouristBus, PassengerBus. *)

val vehicle_leaf_classes : extended -> Schema.class_id array
(** The classes vehicles are instantiated from in Experiment 1 (every
    class of the Vehicle hierarchy). *)

(** The Example 1 instance database (Section 3.2). *)
type example1 = {
  store : Store.t;
  v1 : int; v2 : int; v3 : int; v4 : int; v5 : int; v6 : int;
  c1 : int; c2 : int; c3 : int;
  e1 : int; e2 : int; e3 : int;
}

val example1 : t -> example1

val colors : string array
(** The color domain used by the experiments. *)
