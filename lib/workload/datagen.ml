module Schema = Oodb_schema.Schema
module Encoding = Oodb_schema.Encoding
module Store = Objstore.Store
module Value = Objstore.Value
module Index = Uindex.Index

(* --- experiment 1 ---------------------------------------------------------- *)

type exp1 = {
  ext : Paper_schema.extended;
  store : Store.t;
  ch_color : Index.t;
  path_age : Index.t;
}

(* "we used a small node size m = 10" *)
let exp1_config =
  { (Btree.default_config ~page_size:1024) with max_entries = Some 10 }

let exp1 ?(n_vehicles = 12_000) ?(n_companies = 600) ?(n_employees = 200)
    ~seed () =
  let ext = Paper_schema.extended () in
  let b = ext.b in
  let rng = Rng.create seed in
  let store = Store.create b.schema in
  let employees =
    Array.init n_employees (fun i ->
        Store.insert store ~cls:b.employee
          [
            ("name", Value.Str (Printf.sprintf "Emp%04d" i));
            ("age", Value.Int (20 + Rng.int rng 51));
          ])
  in
  let company_classes =
    [| b.auto_company; b.truck_company; b.japanese_auto_company |]
  in
  let companies =
    Array.init n_companies (fun i ->
        Store.insert store
          ~cls:(Rng.pick rng company_classes)
          [
            ("name", Value.Str (Printf.sprintf "Co%04d" i));
            ("president", Value.Ref (Rng.pick rng employees));
          ])
  in
  let vehicle_classes = Paper_schema.vehicle_leaf_classes ext in
  for i = 0 to n_vehicles - 1 do
    ignore
      (Store.insert store
         ~cls:(Rng.pick rng vehicle_classes)
         [
           ("name", Value.Str (Printf.sprintf "V%05d" i));
           ("color", Value.Str (Rng.pick rng Paper_schema.colors));
           ("weight", Value.Int (500 + Rng.int rng 39_500));
           ("manufactured_by", Value.Ref (Rng.pick rng companies));
         ])
  done;
  let ch_color =
    Index.create_class_hierarchy ~config:exp1_config
      (Storage.Pager.create ())
      b.enc ~root:b.vehicle ~attr:"color"
  in
  Index.build ch_color store;
  let path_age =
    Index.create_path ~config:exp1_config
      (Storage.Pager.create ())
      b.enc ~head:b.vehicle
      ~refs:[ "manufactured_by"; "president" ]
      ~attr:"age"
  in
  Index.build path_age store;
  { ext; store; ch_color; path_age }

(* --- path workloads ---------------------------------------------------------- *)

type path_db = {
  e1 : exp1;
  nix : Baselines.Nix.t;
  bk_path : Baselines.Path_index.t;
  bk_nested : Baselines.Path_index.t;
}

let path_db ?n_vehicles ?n_companies ?n_employees ~seed () =
  let e1 = exp1 ?n_vehicles ?n_companies ?n_employees ~seed () in
  let b = e1.ext.b in
  let schema = b.schema in
  let nix =
    Baselines.Nix.create
      (Storage.Pager.create ())
      ~classes:(Schema.all_classes schema)
  in
  let bk_path =
    Baselines.Path_index.create (Storage.Pager.create ()) Baselines.Path_index.Path
  in
  let bk_nested =
    Baselines.Path_index.create (Storage.Pager.create ())
      Baselines.Path_index.Nested
  in
  List.iter
    (fun v ->
      match Store.follow e1.store v "manufactured_by" with
      | [ c ] -> (
          match Store.follow e1.store c "president" with
          | [ p ] -> (
              match Store.attr e1.store p "age" with
              | Value.Int _ as age ->
                  Baselines.Nix.insert_chain nix ~value:age
                    [
                      (Store.class_of e1.store p, p);
                      (Store.class_of e1.store c, c);
                      (Store.class_of e1.store v, v);
                    ];
                  Baselines.Path_index.insert bk_path ~value:age ~head:v
                    ~inner:[ c; p ];
                  Baselines.Path_index.insert bk_nested ~value:age ~head:v
                    ~inner:[]
              | _ -> ())
          | _ -> ())
      | _ -> ())
    (Store.extent e1.store ~deep:true b.vehicle);
  { e1; nix; bk_path; bk_nested }

(* --- experiment 2 ---------------------------------------------------------- *)

type exp2_config = {
  n_objects : int;
  n_classes : int;
  distinct_keys : int;
  page_size : int;
  seed : int;
}

let default_exp2 ~n_classes ~distinct_keys =
  {
    n_objects = 150_000;
    n_classes;
    distinct_keys;
    page_size = 1024;
    seed = 20260706;
  }

type exp2 = {
  cfg : exp2_config;
  schema : Schema.t;
  enc : Encoding.t;
  root : Schema.class_id;
  classes : Schema.class_id array;
  entries : (int * Schema.class_id * int) array;
  uindex : Index.t;
  cg : Baselines.Cg_tree.t;
}

let hierarchy ~n_classes =
  let s = Schema.create () in
  let root = Schema.add_class s ~name:"C0" ~attrs:[ ("k", Schema.Int) ] in
  (* breadth-first creation with branching factor 3 *)
  let q = Queue.create () in
  Queue.add root q;
  let made = ref 1 in
  while !made < n_classes do
    let parent = Queue.pop q in
    let n_children = min 3 (n_classes - !made) in
    for _ = 1 to n_children do
      let c =
        Schema.add_class s ~parent ~name:(Printf.sprintf "C%d" !made) ~attrs:[]
      in
      incr made;
      Queue.add c q
    done
  done;
  let pre_order = Array.of_list (Schema.subtree s root) in
  (s, root, pre_order)

let exp2 cfg =
  let schema, root, classes = hierarchy ~n_classes:cfg.n_classes in
  let enc = Encoding.assign schema in
  let rng = Rng.create cfg.seed in
  let unique = cfg.distinct_keys >= cfg.n_objects in
  let entries =
    Array.init cfg.n_objects (fun i ->
        let key = if unique then i else Rng.int rng cfg.distinct_keys in
        let cls = Rng.pick rng classes in
        (key, cls, i + 1))
  in
  let upager = Storage.Pager.create ~page_size:cfg.page_size () in
  let uindex = Index.create_class_hierarchy upager enc ~root ~attr:"k" in
  Array.iter
    (fun (k, cls, oid) ->
      Index.insert_entry uindex ~value:(Value.Int k) [ (cls, oid) ])
    entries;
  let cpager = Storage.Pager.create ~page_size:cfg.page_size () in
  let cg = Baselines.Cg_tree.create cpager in
  Array.iter
    (fun (k, cls, oid) -> Baselines.Cg_tree.insert cg ~value:(Value.Int k) ~cls oid)
    entries;
  { cfg; schema; enc; root; classes; entries; uindex; cg }
