type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | Str s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_multiline v =
  match v with
  | Obj kvs ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf "  ";
          escape buf k;
          Buffer.add_string buf ": ";
          write buf v)
        kvs;
      Buffer.add_string buf "\n}\n";
      Buffer.contents buf
  | v -> to_string v ^ "\n"

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at byte %d" m st.pos))) fmt

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail st "expected %c, found %c" c c'
  | None -> fail st "expected %c, found end of input" c

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st "invalid literal"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if st.pos >= String.length st.s then fail st "unterminated escape";
        let e = st.s.[st.pos] in
        st.pos <- st.pos + 1;
        match e with
        | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'u' ->
            if st.pos + 4 > String.length st.s then fail st "bad \\u escape";
            let hex = String.sub st.s st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape %S" hex
            in
            (* encode the code point as UTF-8 (BMP only; enough for the
               control characters our own printer emits) *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | c -> fail st "bad escape \\%c" c)
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && is_num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  match int_of_string_opt tok with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail st "invalid number %S" tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some ('0' .. '9' | '-') -> parse_number st
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected , or ] in array"
        in
        List (items [])
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let member () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members (kv :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev (kv :: acc)
          | _ -> fail st "expected , or } in object"
        in
        Obj (members [])
      end
  | Some c -> fail st "unexpected character %c" c

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* --- accessors ---------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
