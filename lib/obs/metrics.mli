(** A process-wide metrics registry: named counters, gauges and
    log-scaled histograms, grouped by subsystem.

    The paper's whole evaluation is counted in page reads; this registry
    generalizes that discipline to every layer of the engine.  Each
    subsystem (pager, journal, buffer pool, btree, exec) registers its
    instruments once at module initialization; the hot paths then pay a
    single unboxed integer increment per event.  Registration is
    idempotent — asking for an existing [(subsystem, name)] pair returns
    the already-registered instrument — so instruments can be declared
    wherever they are used.

    Snapshots export as a human-readable table ({!pp}) or as
    line-oriented JSON ({!to_json}), which is the payload of
    [BENCH_results.json] and [uindex-cli stats --json].

    Instruments default to the process-wide {!default} registry; tests
    can create private registries.  Histograms bucket by powers of two
    ([0], [1], [2–3], [4–7], ...), which spans page-read counts and
    nanosecond latencies alike in 63 buckets.

    {b Thread safety.}  Every operation in this interface is safe to call
    from concurrent threads and domains.  Counters and gauges are single
    atomic words ({!incr}/{!add} are one fetch-and-add, never a lock);
    histogram observations and summaries serialize on a per-histogram
    mutex; registration and export take a per-registry mutex.  Exports
    ({!pp}, {!to_json}, {!summary}) are internally consistent per
    instrument but not a cross-instrument atomic snapshot — concurrent
    increments may land between two instruments' readouts. *)

type registry

val create_registry : unit -> registry
val default : registry

type counter
(** A monotonically increasing event count. *)

type gauge
(** A last-value-wins instantaneous measurement. *)

type histogram
(** A log2-bucketed distribution of non-negative integer observations
    (page reads per query, latency in nanoseconds, bytes). *)

val counter :
  ?registry:registry -> subsystem:string -> ?help:string -> string -> counter
(** [counter ~subsystem name] registers (or retrieves) the counter
    [subsystem.name].  Raises [Invalid_argument] when the name is already
    registered as a different instrument kind. *)

val gauge :
  ?registry:registry -> subsystem:string -> ?help:string -> string -> gauge

val histogram :
  ?registry:registry -> subsystem:string -> ?help:string -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> int -> unit
val gauge_value : gauge -> int

val observe : histogram -> int -> unit
(** Negative observations clamp to 0. *)

val observe_span : histogram -> (unit -> 'a) -> 'a
(** Times the thunk with the monotonic clock and observes the elapsed
    nanoseconds. *)

type histogram_summary = {
  count : int;
  sum : int;
  max_value : int;
  p50 : int;
  p90 : int;
  p95 : int;
  p99 : int;
      (** quantiles are upper bounds of the containing log2 bucket — exact
          enough to read orders of magnitude, cheap enough for hot paths *)
}

val summary : histogram -> histogram_summary

val find_summary : registry -> string -> histogram_summary option
(** [find_summary r "server.request_ns"] is the current summary of the
    histogram with that fully-qualified name; [None] for counters, gauges
    and unknown names.  This is how the CLI and the server's [stats]
    response surface request-latency percentiles. *)

val summary_json : histogram_summary -> Json.t
(** [{"count": ..., "sum": ..., "max": ..., "p50": ..., "p90": ...,
    "p95": ..., "p99": ...}] — the same rendering {!to_json} uses for
    histogram members. *)

(* {1 Snapshot and export} *)

val find : registry -> string -> int option
(** [find r "pager.reads"] is the current value of a counter or gauge
    with that fully-qualified name; [None] for histograms and unknown
    names. *)

val reset : registry -> unit
(** Zeroes every instrument, keeping registrations — used between
    benchmark phases and by tests. *)

val pp : Format.formatter -> registry -> unit
(** A table of every instrument, grouped by subsystem, zero-valued
    instruments included. *)

val to_json : registry -> Json.t
(** [{"subsystem.name": value, ...}] for counters/gauges, and
    [{"subsystem.name": {"count": ..., "sum": ..., "max": ...,
    "p50": ..., "p90": ..., "p95": ..., "p99": ...}}] for histograms,
    sorted by name. *)

val counters_json : registry -> Json.t
(** The counters-only subset of {!to_json} — every member is monotone
    by construction, which is what snapshot diffing ({!delta}) and the
    CI monotonicity gate rely on.  Gauges and histograms are excluded
    because they may legitimately move backwards. *)

val merge_counters : Json.t list -> Json.t
(** Key-wise sum of several counter snapshots (as produced by
    {!counters_json}) into one — the cluster-wide totals a
    multi-endpoint [uindex stats]/[uindex top] shows as its merged row.
    A key missing from some snapshots counts from 0 there; non-integer
    members are dropped; the result's keys are sorted, so the merge is
    insensitive to both snapshot order and member order. *)

val delta : before:Json.t -> after:Json.t -> (string * int) list
(** Pairwise differences of the integer members of two registry
    snapshots (as produced by {!counters_json} or {!to_json}), keyed by
    the members of [after]; a key missing from [before] counts from 0.
    Non-integer members (histogram summaries) are skipped.  This is the
    rate source for [uindex top] and the monotone-counters check. *)
