(* Counters and gauges are single atomic words, so hot paths pay one
   fetch-and-add per event even with concurrent snapshot readers and
   server workers.  Histograms mutate several fields per observation, so
   each carries its own mutex; registries guard their table with one more
   for the (rare) registration and export paths. *)

type counter = { c_value : int Atomic.t }
type gauge = { g_value : int Atomic.t }

let n_buckets = 64

type histogram = {
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  buckets : int array;  (* buckets.(i) counts values in [2^(i-1), 2^i) *)
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type entry = { help : string; inst : instrument }

type registry = { lock : Mutex.t; table : (string, entry) Hashtbl.t }

let create_registry () = { lock = Mutex.create (); table = Hashtbl.create 64 }
let default = create_registry ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let qualify ~subsystem name = subsystem ^ "." ^ name

let register registry ~key ~help ~make ~cast ~kind =
  with_lock registry.lock @@ fun () ->
  match Hashtbl.find_opt registry.table key with
  | Some { inst; _ } -> (
      match cast inst with
      | Some i -> i
      | None ->
          invalid_arg
            (Printf.sprintf
               "Metrics: %s is already registered as a different kind" key))
  | None ->
      let i = make () in
      Hashtbl.add registry.table key { help; inst = kind i };
      i

let counter ?(registry = default) ~subsystem ?(help = "") name =
  register registry ~key:(qualify ~subsystem name) ~help
    ~make:(fun () -> { c_value = Atomic.make 0 })
    ~cast:(function Counter c -> Some c | _ -> None)
    ~kind:(fun c -> Counter c)

let gauge ?(registry = default) ~subsystem ?(help = "") name =
  register registry ~key:(qualify ~subsystem name) ~help
    ~make:(fun () -> { g_value = Atomic.make 0 })
    ~cast:(function Gauge g -> Some g | _ -> None)
    ~kind:(fun g -> Gauge g)

let histogram ?(registry = default) ~subsystem ?(help = "") name =
  register registry ~key:(qualify ~subsystem name) ~help
    ~make:(fun () ->
      {
        h_lock = Mutex.create ();
        h_count = 0;
        h_sum = 0;
        h_max = 0;
        buckets = Array.make n_buckets 0;
      })
    ~cast:(function Histogram h -> Some h | _ -> None)
    ~kind:(fun h -> Histogram h)

let incr c = ignore (Atomic.fetch_and_add c.c_value 1)
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let value c = Atomic.get c.c_value

let set g v = Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

(* bucket index: 0 holds exactly 0; index i >= 1 holds [2^(i-1), 2^i) *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      Stdlib.incr i;
      v := !v lsr 1
    done;
    min !i (n_buckets - 1)
  end

let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

(* Hand-rolled lock scope (no [with_lock] closure): observations ride
   the descent hot path (one per node visit), which must stay
   allocation-free, and nothing in the guarded section can raise —
   [bucket_of] caps its result below [n_buckets]. *)
let observe h v =
  let v = max 0 v in
  let i = bucket_of v in
  Mutex.lock h.h_lock;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v;
  h.buckets.(i) <- h.buckets.(i) + 1;
  Mutex.unlock h.h_lock

let observe_span h f =
  let t0 = Unix.gettimeofday () in
  let finally () = observe h (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)) in
  Fun.protect ~finally f

type histogram_summary = {
  count : int;
  sum : int;
  max_value : int;
  p50 : int;
  p90 : int;
  p95 : int;
  p99 : int;
}

(* callers hold h.h_lock *)
let quantile h q =
  if h.h_count = 0 then 0
  else begin
    let target = int_of_float (Float.round (q *. float_of_int h.h_count)) in
    let target = max 1 (min h.h_count target) in
    let acc = ref 0 and i = ref 0 in
    while !acc < target && !i < n_buckets do
      acc := !acc + h.buckets.(!i);
      if !acc < target then Stdlib.incr i
    done;
    min (bucket_upper !i) h.h_max
  end

let summary h =
  with_lock h.h_lock @@ fun () ->
  {
    count = h.h_count;
    sum = h.h_sum;
    max_value = h.h_max;
    p50 = quantile h 0.5;
    p90 = quantile h 0.9;
    p95 = quantile h 0.95;
    p99 = quantile h 0.99;
  }

(* --- snapshot / export -------------------------------------------------- *)

let sorted_entries r =
  with_lock r.lock (fun () ->
      Hashtbl.fold (fun k e acc -> (k, e) :: acc) r.table [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find r key =
  match with_lock r.lock (fun () -> Hashtbl.find_opt r.table key) with
  | Some { inst = Counter c; _ } -> Some (value c)
  | Some { inst = Gauge g; _ } -> Some (gauge_value g)
  | Some { inst = Histogram _; _ } | None -> None

let find_summary r key =
  match with_lock r.lock (fun () -> Hashtbl.find_opt r.table key) with
  | Some { inst = Histogram h; _ } -> Some (summary h)
  | Some _ | None -> None

let reset r =
  List.iter
    (fun (_, e) ->
      match e.inst with
      | Counter c -> Atomic.set c.c_value 0
      | Gauge g -> Atomic.set g.g_value 0
      | Histogram h ->
          with_lock h.h_lock (fun () ->
              h.h_count <- 0;
              h.h_sum <- 0;
              h.h_max <- 0;
              Array.fill h.buckets 0 n_buckets 0))
    (sorted_entries r)

let pp ppf r =
  let entries = sorted_entries r in
  let last_subsystem = ref "" in
  List.iter
    (fun (key, e) ->
      let subsystem =
        match String.index_opt key '.' with
        | Some i -> String.sub key 0 i
        | None -> ""
      in
      if subsystem <> !last_subsystem then begin
        if !last_subsystem <> "" then Format.fprintf ppf "@.";
        Format.fprintf ppf "[%s]@." subsystem;
        last_subsystem := subsystem
      end;
      match e.inst with
      | Counter c -> Format.fprintf ppf "  %-40s %12d@." key (value c)
      | Gauge g -> Format.fprintf ppf "  %-40s %12d  (gauge)@." key (gauge_value g)
      | Histogram h ->
          let s = summary h in
          Format.fprintf ppf
            "  %-40s count=%d sum=%d max=%d p50<=%d p90<=%d p95<=%d p99<=%d@."
            key s.count s.sum s.max_value s.p50 s.p90 s.p95 s.p99)
    entries

let summary_json s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Int s.sum);
      ("max", Json.Int s.max_value);
      ("p50", Json.Int s.p50);
      ("p90", Json.Int s.p90);
      ("p95", Json.Int s.p95);
      ("p99", Json.Int s.p99);
    ]

let to_json r =
  let entries = sorted_entries r in
  Json.Obj
    (List.map
       (fun (key, e) ->
         match e.inst with
         | Counter c -> (key, Json.Int (value c))
         | Gauge g -> (key, Json.Int (gauge_value g))
         | Histogram h -> (key, summary_json (summary h)))
       entries)

(* Counters only — the monotone subset of the registry.  Gauges can
   legitimately decrease (queue depth, active sessions), so snapshot
   diffing and monotonicity checks work off this export. *)
let counters_json r =
  Json.Obj
    (List.filter_map
       (fun (key, e) ->
         match e.inst with
         | Counter c -> Some (key, Json.Int (value c))
         | Gauge _ | Histogram _ -> None)
       (sorted_entries r))

(* Key-wise sum of counter snapshots from several servers: the cluster
   total a multi-endpoint [stats]/[top] renders as its merged row.  Keys
   missing from some snapshots count from 0; non-integer members are
   dropped.  Output keys are sorted, so merging is order-insensitive. *)
let merge_counters snaps =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun snap ->
      match snap with
      | Json.Obj kvs ->
          List.iter
            (fun (k, v) ->
              match v with
              | Json.Int n ->
                  let prev =
                    Option.value ~default:0 (Hashtbl.find_opt tbl k)
                  in
                  Hashtbl.replace tbl k (prev + n)
              | _ -> ())
            kvs
      | _ -> ())
    snaps;
  let kvs = Hashtbl.fold (fun k n acc -> (k, Json.Int n) :: acc) tbl [] in
  Json.Obj (List.sort (fun (a, _) (b, _) -> compare a b) kvs)

let delta ~before ~after =
  match after with
  | Json.Obj kvs ->
      List.filter_map
        (fun (k, v) ->
          match v with
          | Json.Int a ->
              let b =
                match Json.member k before with
                | Some (Json.Int b) -> b
                | _ -> 0
              in
              Some (k, a - b)
          | _ -> None)
        kvs
  | _ -> []
