type 'a t = {
  lock : Mutex.t;
  slots : 'a option array;  (* capacity 0 rings keep a 1-slot dummy array *)
  cap : int;
  mutable head : int;  (* next write position *)
  mutable len : int;
}

let create cap =
  if cap < 0 then invalid_arg "Ring.create: negative capacity";
  {
    lock = Mutex.create ();
    slots = Array.make (max cap 1) None;
    cap;
    head = 0;
    len = 0;
  }

let capacity t = t.cap

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> t.len)

let add t x =
  if t.cap > 0 then
    with_lock t (fun () ->
        t.slots.(t.head) <- Some x;
        t.head <- (t.head + 1) mod t.cap;
        if t.len < t.cap then t.len <- t.len + 1)

let to_list t =
  with_lock t (fun () ->
      (* newest first: walk backwards from the last written slot *)
      let out = ref [] in
      for i = t.len downto 1 do
        let idx = (t.head - i + (t.cap * 2)) mod max t.cap 1 in
        match t.slots.(idx) with
        | Some x -> out := x :: !out
        | None -> ()
      done;
      !out)

let clear t =
  with_lock t (fun () ->
      Array.fill t.slots 0 (Array.length t.slots) None;
      t.head <- 0;
      t.len <- 0)
