type span = {
  name : string;
  mutable fields : (string * int) list;
  mutable children : span list;
}

let span ?(fields = []) name = { name; fields; children = [] }

let add_field sp k v =
  if List.mem_assoc k sp.fields then
    sp.fields <-
      List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) sp.fields
  else sp.fields <- sp.fields @ [ (k, v) ]

let add_child sp child = sp.children <- sp.children @ [ child ]

let field sp k = List.assoc_opt k sp.fields

let rec total sp k =
  let own = match field sp k with Some v -> v | None -> 0 in
  List.fold_left (fun acc c -> acc + total c k) own sp.children

(* --- sinks -------------------------------------------------------------- *)

type sink = Null | Collector of span list ref

let null = Null
let collector () = Collector (ref [])
let collected = function Null -> [] | Collector r -> List.rev !r
let enabled = function Null -> false | Collector _ -> true

let emit sink sp =
  match sink with Null -> () | Collector r -> r := sp :: !r

let global_sink = ref Null

let set_global s = global_sink := s
let global () = !global_sink

let scope () = match !global_sink with Null -> None | s -> Some s

let with_collector f =
  let prev = !global_sink in
  let c = collector () in
  global_sink := c;
  let finally () = global_sink := prev in
  let x = Fun.protect ~finally f in
  (x, collected c)

(* --- rendering ---------------------------------------------------------- *)

let pp ppf sp =
  let rec go depth sp =
    Format.fprintf ppf "%s%s" (String.make (2 * depth) ' ') sp.name;
    List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v) sp.fields;
    Format.fprintf ppf "@.";
    List.iter (go (depth + 1)) sp.children
  in
  go 0 sp

let rec to_json sp =
  Json.Obj
    (("name", Json.Str sp.name)
     :: List.map (fun (k, v) -> (k, Json.Int v)) sp.fields
    @
    match sp.children with
    | [] -> []
    | cs -> [ ("children", Json.List (List.map to_json cs)) ])
