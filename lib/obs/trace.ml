type span = {
  name : string;
  mutable fields : (string * int) list;
  mutable children : span list;
}

let span ?(fields = []) name = { name; fields; children = [] }

let add_field sp k v =
  if List.mem_assoc k sp.fields then
    sp.fields <-
      List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) sp.fields
  else sp.fields <- sp.fields @ [ (k, v) ]

let add_child sp child = sp.children <- sp.children @ [ child ]

let field sp k = List.assoc_opt k sp.fields

let rec total sp k =
  let own = match field sp k with Some v -> v | None -> 0 in
  List.fold_left (fun acc c -> acc + total c k) own sp.children

(* --- sinks -------------------------------------------------------------- *)

(* A collector's span list lives in an [Atomic.t] pushed with CAS, so
   concurrent [emit]s from different domains interleave without losing
   spans.  The usual usage keeps collectors domain-local anyway (see
   [with_collector]), but the shared-global configuration must not
   corrupt the list either. *)
type sink = Null | Collector of span list Atomic.t

let null = Null
let collector () = Collector (Atomic.make [])
let collected = function Null -> [] | Collector r -> List.rev (Atomic.get r)
let enabled = function Null -> false | Collector _ -> true

let emit sink sp =
  match sink with
  | Null -> ()
  | Collector r ->
      let rec push () =
        let old = Atomic.get r in
        if not (Atomic.compare_and_set r old (sp :: old)) then push ()
      in
      push ()

(* The process-wide sink lives in an atomic slot; each domain can shadow
   it with a domain-local override (installed by [with_collector]) so
   worker domains trace concurrently without sharing one span list. *)
let global_sink = Atomic.make Null

let set_global s = Atomic.set global_sink s
let global () = Atomic.get global_sink

let domain_sink : sink option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () =
  match !(Domain.DLS.get domain_sink) with
  | Some s -> s
  | None -> Atomic.get global_sink

let scope () = match current () with Null -> None | s -> Some s

let with_collector f =
  let slot = Domain.DLS.get domain_sink in
  let prev = !slot in
  let c = collector () in
  slot := Some c;
  let finally () = slot := prev in
  let x = Fun.protect ~finally f in
  (x, collected c)

(* --- rendering ---------------------------------------------------------- *)

let pp ppf sp =
  let rec go depth sp =
    Format.fprintf ppf "%s%s" (String.make (2 * depth) ' ') sp.name;
    List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v) sp.fields;
    Format.fprintf ppf "@.";
    List.iter (go (depth + 1)) sp.children
  in
  go 0 sp

let rec to_json sp =
  Json.Obj
    (("name", Json.Str sp.name)
     :: List.map (fun (k, v) -> (k, Json.Int v)) sp.fields
    @
    match sp.children with
    | [] -> []
    | cs -> [ ("children", Json.List (List.map to_json cs)) ])
