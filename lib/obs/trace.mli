(** Structured query tracing: cheap span trees with integer fields.

    A span is one phase of a query's execution (plan compilation, key
    expansion, one B+-tree descent segment, the merge) annotated with
    integer fields — page-read deltas taken from [Storage.Stats]
    snapshots, entries scanned, bindings produced.  Spans nest, so a
    whole query renders as a tree: the engine's [EXPLAIN ANALYZE].

    Tracing is off by default: the global sink is {!null}, and
    instrumented code guards span construction behind {!scope}, which
    returns [None] when the sink discards everything.  The disabled cost
    is one global read and an option match per query — unmeasurable next
    to a B-tree descent.  Tests and the CLI install a {!collector} sink
    (usually via {!with_collector}) to capture finished span trees. *)

type span = {
  name : string;
  mutable fields : (string * int) list;  (** insertion order preserved *)
  mutable children : span list;  (** execution order *)
}

val span : ?fields:(string * int) list -> string -> span

val add_field : span -> string -> int -> unit
(** Appends (or replaces, by name) one field. *)

val add_child : span -> span -> unit
(** Appends a child span (kept in execution order). *)

val field : span -> string -> int option

val total : span -> string -> int
(** Sum of a field over the whole subtree — e.g.
    [total sp "page_reads"] is the query's total page reads when each
    descent segment carries its own delta. *)

(** {1 Sinks} *)

type sink

val null : sink
(** Discards everything; spans are never even allocated. *)

val collector : unit -> sink
val collected : sink -> span list
(** Finished root spans, in emission order; [[]] for {!null}. *)

val enabled : sink -> bool
val emit : sink -> span -> unit

(** {1 The global sink}

    The process-wide sink lives in an atomic slot, and every domain can
    shadow it with a domain-local override: {!with_collector} installs
    its collector only for the calling domain, so worker domains each
    trace into their own span list concurrently.  Collector emission
    itself is lock-free (CAS push), so even a deliberately shared
    collector never loses or corrupts spans. *)

val set_global : sink -> unit
(** Atomically replaces the process-wide sink (seen by every domain
    that has no domain-local override). *)

val global : unit -> sink

val scope : unit -> sink option
(** [Some sink] when the current domain's effective sink collects,
    [None] when tracing is off — the one-branch guard instrumented code
    uses.  The effective sink is the domain-local override when one is
    installed, the global sink otherwise. *)

val with_collector : (unit -> 'a) -> 'a * span list
(** Runs the thunk with a fresh collector installed as the calling
    domain's sink (restoring the previous override afterwards) and
    returns the spans it emitted.  Other domains are unaffected, so
    concurrent [with_collector] calls on different domains each see
    exactly their own spans. *)

(** {1 Rendering} *)

val pp : Format.formatter -> span -> unit
(** One line per span, indented by depth:
    [descent  page_reads=4 entries=12]. *)

val to_json : span -> Json.t
(** [{"name": ..., <field>: ..., "children": [...]}]. *)
