(** Bounded, thread-safe ring buffer.

    A fixed-capacity circular buffer guarded by a mutex: [add] evicts
    the oldest element once the buffer is full, so the ring always holds
    the most recent [capacity] elements.  Used for the server's
    slow-query log, where worker domains push entries concurrently and
    the admin protocol drains a snapshot without stopping the server.

    A capacity of [0] is a legal "disabled" ring: [add] is a no-op and
    [to_list] is always empty. *)

type 'a t

val create : int -> 'a t
(** [create cap] makes an empty ring holding at most [cap] elements.
    @raise Invalid_argument if [cap] is negative. *)

val capacity : 'a t -> int
val length : 'a t -> int

val add : 'a t -> 'a -> unit
(** Appends an element, evicting the oldest one when the ring is full. *)

val to_list : 'a t -> 'a list
(** Snapshot of the contents, newest first. *)

val clear : 'a t -> unit
