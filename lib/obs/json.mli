(** A minimal JSON value type with a compact printer and a strict parser.

    The observability layer exports metric registries, span trees and
    benchmark results as machine-readable JSON ([BENCH_results.json], the
    CLI's [--json] flags).  The repository deliberately depends only on
    the preinstalled packages, so this module provides the small JSON
    subset those exports need: UTF-8 pass-through strings, exact ints,
    floats, arrays and objects.  Numbers parse as [Int] when they contain
    no fraction or exponent, [Float] otherwise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no insignificant whitespace). *)

val to_multiline : t -> string
(** Line-oriented rendering: one top-level object member per line —
    greppable output for [BENCH_results.json] and [uindex-cli stats
    --json].  Nested values stay compact. *)

val pp : Format.formatter -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Strict parse of one JSON value (surrounding whitespace allowed).
    Raises {!Parse_error} with a position diagnostic on malformed
    input. *)

val member : string -> t -> t option
(** Object member lookup; [None] on missing keys and non-objects. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
