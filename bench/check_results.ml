(* CI gate over BENCH_results.json: validates the file parses, carries the
   expected members, and that the deterministic Table 1 page-read counts
   match the checked-in expectations (expected_table1_quick.json for the
   UINDEX_BENCH_QUICK=1 smoke run).  Any drift — a page-layout change, a
   descent regression, a planner change — fails the build until the
   expectations are regenerated on purpose.

   Usage: check_results <BENCH_results.json> <expected.json> *)

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("check_results: " ^ m);
      exit 1)
    fmt

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> fail "%s" m
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let parse path =
  match Obs.Json.of_string (read_file path) with
  | v -> v
  | exception Obs.Json.Parse_error m -> fail "%s: malformed JSON: %s" path m

let get path k j =
  match Obs.Json.member k j with
  | Some v -> v
  | None -> fail "%s: missing member %S" path k

(* The cache A/B section carries invariants rather than pinned values
   (wall-clock-free, but dependent on pool capacity): every warm run must
   be no more expensive than its cold twin, hit the pool at all, and at
   least one query class must get strictly cheaper. *)
let check_cache_ab path j =
  let rows =
    match get path "cache_ab" j with
    | Obs.Json.List (_ :: _ as rows) -> rows
    | Obs.Json.List [] -> fail "%s: cache_ab is empty" path
    | _ -> fail "%s: cache_ab is not a list" path
  in
  let any_strict = ref false in
  List.iter
    (fun row ->
      match
        ( Obs.Json.(member "id" row |> Option.map to_str),
          Obs.Json.(member "cold_reads" row |> Option.map to_int),
          Obs.Json.(member "warm_reads" row |> Option.map to_int),
          Obs.Json.(member "warm_pool_hits" row |> Option.map to_int),
          Obs.Json.member "warm_hit_rate" row )
      with
      | Some (Some id), Some (Some cold), Some (Some warm), Some (Some hits),
        Some rate ->
          let rate =
            match rate with
            | Obs.Json.Float f -> f
            | Obs.Json.Int i -> float_of_int i
            | _ -> fail "%s: cache_ab row %S: warm_hit_rate not a number" path id
          in
          if warm > cold then
            fail "cache_ab row %S: warm reads %d > cold reads %d" id warm cold;
          if hits <= 0 || rate <= 0. then
            fail "cache_ab row %S: warm run never hit the pool" id;
          if warm < cold then any_strict := true
      | _ -> fail "%s: malformed cache_ab row" path)
    rows;
  if not !any_strict then
    fail "cache_ab: no query class got strictly cheaper warm than cold";
  List.length rows

(* The checksum A/B section is a hard invariant, not a pinned value:
   verifying per-page checksums must not change the paper's metric, so
   every query class must read exactly the same pages with checksums on
   and off.  (The ns_* wall-clock columns are informational only.) *)
let check_checksum_ab path j =
  let rows =
    match get path "checksum_ab" j with
    | Obs.Json.List (_ :: _ as rows) -> rows
    | Obs.Json.List [] -> fail "%s: checksum_ab is empty" path
    | _ -> fail "%s: checksum_ab is not a list" path
  in
  List.iter
    (fun row ->
      match
        ( Obs.Json.(member "id" row |> Option.map to_str),
          Obs.Json.(member "reads_on" row |> Option.map to_int),
          Obs.Json.(member "reads_off" row |> Option.map to_int) )
      with
      | Some (Some id), Some (Some on_), Some (Some off) ->
          if on_ <> off then
            fail
              "checksum_ab row %S: checksums changed page reads (%d on, %d \
               off) — verification must stay out of the paper's metric"
              id on_ off
      | _ -> fail "%s: malformed checksum_ab row" path)
    rows;
  List.length rows

(* The serve_throughput section carries two invariants.  Correctness:
   every thread count's clients must have received byte-identical reply
   streams (one digest per row; all rows must agree — concurrent serving
   returns exactly the sequential answers).  Scaling: on a multi-core
   host (serve_cores >= 2, i.e. any CI runner) queries/sec with 4 worker
   threads must be at least that with 1 (each row is best-of-3, so a
   scheduler hiccup doesn't trip this); on a single core, where 4
   CPU-bound workers cannot beat 1 by construction, the gate degrades to
   an anti-collapse floor of half the single-thread rate. *)
let check_serve_throughput path j =
  let rows =
    match get path "serve_throughput" j with
    | Obs.Json.List (_ :: _ as rows) -> rows
    | Obs.Json.List [] -> fail "%s: serve_throughput is empty" path
    | _ -> fail "%s: serve_throughput is not a list" path
  in
  let parsed =
    List.map
      (fun row ->
        match
          ( Obs.Json.(member "threads" row |> Option.map to_int),
            Obs.Json.(member "qps" row),
            Obs.Json.(member "digest" row |> Option.map to_str),
            Obs.Json.(member "p99_us" row) )
        with
        | Some (Some threads), Some qps, Some (Some digest), Some _ ->
            let qps =
              match qps with
              | Obs.Json.Float f -> f
              | Obs.Json.Int i -> float_of_int i
              | _ -> fail "%s: serve_throughput qps not a number" path
            in
            (threads, qps, digest)
        | _ -> fail "%s: malformed serve_throughput row" path)
      rows
  in
  (match parsed with
  | (_, _, d) :: rest ->
      List.iter
        (fun (threads, _, d') ->
          if d' <> d then
            fail
              "serve_throughput: %d-thread answers differ from sequential \
               (digest %s vs %s) — concurrent readers returned different \
               rows"
              threads d' d)
        rest
  | [] -> ());
  let qps_at n =
    match List.find_opt (fun (t, _, _) -> t = n) parsed with
    | Some (_, q, _) -> q
    | None -> fail "%s: serve_throughput has no %d-thread row" path n
  in
  let q1 = qps_at 1 and q4 = qps_at 4 in
  let cores =
    match Obs.Json.(get path "serve_cores" j |> to_int) with
    | Some n -> n
    | None -> fail "%s: serve_cores is not an int" path
  in
  if cores >= 2 then begin
    if q4 < q1 then
      fail
        "serve_throughput: 4 workers slower than 1 on %d cores (%.1f vs \
         %.1f queries/s)"
        cores q4 q1
  end
  else if q4 < 0.5 *. q1 then
    fail
      "serve_throughput: single-core collapse — 4 workers at %.1f \
       queries/s, under half the 1-worker %.1f"
      q4 q1;
  ( List.length parsed,
    match parsed with (_, _, d) :: _ -> Some d | [] -> None )

(* The serve_mixed section is the group-commit gate.  Correctness:
   writers only insert values no benchmark query matches, so reader
   reply digests must agree across every mixed row (and every commit
   must actually have happened).  Amortization: at writer concurrency
   >= 4 the journal must have issued strictly fewer than one fsync per
   commit — if group commit ever stops batching, this hard-fails. *)
let check_serve_mixed path j =
  let rows =
    match get path "serve_mixed" j with
    | Obs.Json.List (_ :: _ as rows) -> rows
    | Obs.Json.List [] -> fail "%s: serve_mixed is empty" path
    | _ -> fail "%s: serve_mixed is not a list" path
  in
  let num path name = function
    | Obs.Json.Float f -> f
    | Obs.Json.Int i -> float_of_int i
    | _ -> fail "%s: serve_mixed %s not a number" path name
  in
  let parsed =
    List.map
      (fun row ->
        match
          ( Obs.Json.(member "writers" row |> Option.map to_int),
            Obs.Json.(member "commits" row |> Option.map to_int),
            Obs.Json.member "fsyncs_per_commit" row,
            Obs.Json.(member "digest" row |> Option.map to_str) )
        with
        | Some (Some writers), Some (Some commits), Some fpc, Some (Some digest)
          ->
            (writers, commits, num path "fsyncs_per_commit" fpc, digest)
        | _ -> fail "%s: malformed serve_mixed row" path)
      rows
  in
  (match parsed with
  | (_, _, _, d) :: rest ->
      List.iter
        (fun (writers, _, _, d') ->
          if d' <> d then
            fail
              "serve_mixed: reader answers with %d writers differ (digest %s \
               vs %s) — writers leaked into snapshot reads"
              writers d' d)
        rest
  | [] -> ());
  let saw_concurrent = ref false in
  List.iter
    (fun (writers, commits, fpc, _) ->
      if commits <= 0 then
        fail "serve_mixed: %d-writer row committed nothing" writers;
      if writers >= 4 then begin
        saw_concurrent := true;
        if fpc >= 1.0 then
          fail
            "serve_mixed: %.2f fsyncs per commit with %d concurrent writers \
             (%d commits) — group commit is not amortizing"
            fpc writers commits
      end)
    parsed;
  if not !saw_concurrent then
    fail "serve_mixed: no row with >= 4 writers to gate on";
  List.length parsed

(* The telemetry_overhead section gates the cost of observability.
   Correctness: the "on" row (tracing every request, slow log admitting
   everything) and the "off" row (telemetry dark) must carry the same
   reply digest — and the same digest as serve_throughput's rows, since
   all three drive the identical query mix through the service.
   Telemetry that changes response bytes is a correctness bug, not an
   overhead.  Cost: the traced p50 must stay within 10% of the dark
   p50 (rows are best-of-3, damping scheduler noise), and at threshold
   0 the slow ring must actually have admitted entries. *)
let check_telemetry path j ~serve_digest =
  let rows =
    match get path "telemetry_overhead" j with
    | Obs.Json.List (_ :: _ as rows) -> rows
    | Obs.Json.List [] -> fail "%s: telemetry_overhead is empty" path
    | _ -> fail "%s: telemetry_overhead is not a list" path
  in
  let num name row =
    match Obs.Json.member name row with
    | Some (Obs.Json.Float f) -> f
    | Some (Obs.Json.Int i) -> float_of_int i
    | _ -> fail "%s: telemetry_overhead.%s not a number" path name
  in
  let find mode =
    match
      List.find_opt
        (fun row ->
          Obs.Json.(member "mode" row |> Option.map to_str)
          = Some (Some mode))
        rows
    with
    | Some row -> row
    | None -> fail "%s: telemetry_overhead has no %S row" path mode
  in
  let off = find "off" and on_ = find "on" in
  let digest row =
    match Obs.Json.(member "digest" row |> Option.map to_str) with
    | Some (Some d) -> d
    | _ -> fail "%s: telemetry_overhead row missing digest" path
  in
  let d_off = digest off and d_on = digest on_ in
  if d_on <> d_off then
    fail
      "telemetry_overhead: tracing changed reply bytes (digest %s on, %s \
       off) — telemetry must never alter responses"
      d_on d_off;
  (match serve_digest with
  | Some d when d <> d_off ->
      fail
        "telemetry_overhead: digest %s differs from serve_throughput's %s \
         — the sections no longer run the same query mix"
        d_off d
  | _ -> ());
  let p50_off = num "p50_us" off and p50_on = num "p50_us" on_ in
  if p50_on > 1.10 *. p50_off then
    fail
      "telemetry_overhead: traced p50 %.1f us is %.1f%% over dark p50 %.1f \
       us (budget: 10%%)"
      p50_on
      ((p50_on /. p50_off -. 1.) *. 100.)
      p50_off;
  (match Obs.Json.(member "slow_entries" on_ |> Option.map to_int) with
  | Some (Some n) when n >= 1 -> ()
  | Some (Some n) ->
      fail
        "telemetry_overhead: %d slow entries admitted at threshold 0 — the \
         slow ring never saw the traffic"
        n
  | _ -> fail "%s: telemetry_overhead.slow_entries missing" path);
  (p50_on /. p50_off -. 1.) *. 100.

(* The descent_fastpath section gates the compare-in-place descent
   (DESIGN.md §13).  Correctness: the "fast" and "reference" rows must
   carry the same reply digest — and the same digest as
   serve_throughput's rows, since all drive the identical query mix.  A
   fast path that changes a single reply byte is a search bug.  Cost:
   the fast p50 must stay within 10% of the reference p50 (best-of-3
   rows damp scheduler noise; on quiet hardware it is strictly faster),
   and the fast per-request minor-allocation median must be strictly
   below the reference one — allocation is what the fast path exists to
   remove, and the comparison is scheduling-independent. *)
let check_descent_fastpath path j ~serve_digest =
  let rows =
    match get path "descent_fastpath" j with
    | Obs.Json.List (_ :: _ as rows) -> rows
    | Obs.Json.List [] -> fail "%s: descent_fastpath is empty" path
    | _ -> fail "%s: descent_fastpath is not a list" path
  in
  let num name row =
    match Obs.Json.member name row with
    | Some (Obs.Json.Float f) -> f
    | Some (Obs.Json.Int i) -> float_of_int i
    | _ -> fail "%s: descent_fastpath.%s not a number" path name
  in
  let find mode =
    match
      List.find_opt
        (fun row ->
          Obs.Json.(member "mode" row |> Option.map to_str)
          = Some (Some mode))
        rows
    with
    | Some row -> row
    | None -> fail "%s: descent_fastpath has no %S row" path mode
  in
  let reference = find "reference" and fast = find "fast" in
  let digest row =
    match Obs.Json.(member "digest" row |> Option.map to_str) with
    | Some (Some d) -> d
    | _ -> fail "%s: descent_fastpath row missing digest" path
  in
  let d_ref = digest reference and d_fast = digest fast in
  if d_fast <> d_ref then
    fail
      "descent_fastpath: fast descent changed reply bytes (digest %s fast, \
       %s reference) — compare-in-place search disagrees with decode"
      d_fast d_ref;
  (match serve_digest with
  | Some d when d <> d_ref ->
      fail
        "descent_fastpath: digest %s differs from serve_throughput's %s — \
         the sections no longer run the same query mix"
        d_ref d
  | _ -> ());
  let p50_ref = num "p50_us" reference and p50_fast = num "p50_us" fast in
  if p50_fast > 1.10 *. p50_ref then
    fail
      "descent_fastpath: fast p50 %.1f us is %.1f%% over reference p50 %.1f \
       us (budget: 10%%) — the fast path regressed latency"
      p50_fast
      ((p50_fast /. p50_ref -. 1.) *. 100.)
      p50_ref;
  let al_ref = num "alloc_p50_words" reference
  and al_fast = num "alloc_p50_words" fast in
  if al_fast >= al_ref then
    fail
      "descent_fastpath: fast path allocates %.0f words per request at p50, \
       not below the reference %.0f — the allocation-free descent is not \
       engaging"
      al_fast al_ref;
  (al_fast, al_ref)

(* The chaos_resilience section gates the fault-tolerant serving story.
   Correctness: both rows' digests must equal serve_throughput's — every
   reply the retrying client accepted as a success was byte-identical to
   the fault-free answer, storm or no storm.  Robustness: the "on" row
   must show the storm actually happened (faults > 0) and that retries
   carried requests through it (retries > 0, success rate >= 90%); the
   "off" row must be perfect (success rate 1.0, zero faults) — a clean
   server that drops requests is a server bug, not chaos. *)
let check_chaos_resilience path j ~serve_digest =
  let rows =
    match get path "chaos_resilience" j with
    | Obs.Json.List (_ :: _ as rows) -> rows
    | Obs.Json.List [] -> fail "%s: chaos_resilience is empty" path
    | _ -> fail "%s: chaos_resilience is not a list" path
  in
  let num name row =
    match Obs.Json.member name row with
    | Some (Obs.Json.Float f) -> f
    | Some (Obs.Json.Int i) -> float_of_int i
    | _ -> fail "%s: chaos_resilience.%s not a number" path name
  in
  let find mode =
    match
      List.find_opt
        (fun row ->
          Obs.Json.(member "mode" row |> Option.map to_str)
          = Some (Some mode))
        rows
    with
    | Some row -> row
    | None -> fail "%s: chaos_resilience has no %S row" path mode
  in
  let off = find "off" and on_ = find "on" in
  let digest row =
    match Obs.Json.(member "digest" row |> Option.map to_str) with
    | Some (Some d) -> d
    | _ -> fail "%s: chaos_resilience row missing digest" path
  in
  let d_off = digest off and d_on = digest on_ in
  if d_on <> d_off then
    fail
      "chaos_resilience: chaos changed accepted reply bytes (digest %s on, \
       %s off) — a corrupted answer slipped past the client"
      d_on d_off;
  (match serve_digest with
  | Some d when d <> d_off ->
      fail
        "chaos_resilience: digest %s differs from serve_throughput's %s — \
         the sections no longer run the same query mix"
        d_off d
  | _ -> ());
  if num "success_rate" off < 1.0 then
    fail
      "chaos_resilience: fault-free success rate %.3f < 1.0 — the server \
       drops requests without chaos"
      (num "success_rate" off);
  if num "faults" off > 0. then
    fail "chaos_resilience: %.0f faults injected with chaos off"
      (num "faults" off);
  let faults = num "faults" on_ and retries = num "retries" on_ in
  if faults <= 0. then
    fail "chaos_resilience: the storm never happened (0 faults injected)";
  if retries <= 0. then
    fail
      "chaos_resilience: %.0f faults injected but the client never retried \
       — the retry layer is not engaging"
      faults;
  let rate = num "success_rate" on_ in
  if rate < 0.9 then
    fail
      "chaos_resilience: success rate %.3f under chaos (threshold 0.9, %.0f \
       faults) — retries are not carrying requests through the storm"
      rate faults;
  (rate, faults, retries)

(* The shard_scaling section gates the scatter-gather layer.
   Correctness: the canonical reply digest must be identical at every
   shard count — partitioning the index by COD range must never change
   an answer, whether a query was served by one shard or merged from
   four.  Scaling: each shard brings its own worker domains, so with
   cores to actually spread onto (serve_cores >= 8: 4 shards x 2
   workers) the 4-shard deployment must reach at least twice the
   1-shard throughput; with fewer cores the gate degrades to
   monotonicity (4 shards no slower than 1), and on a single core to an
   anti-collapse floor of half the 1-shard rate — extra shards cannot
   buy parallelism that the host does not have. *)
let check_shard_scaling path j =
  let rows =
    match get path "shard_scaling" j with
    | Obs.Json.List (_ :: _ as rows) -> rows
    | Obs.Json.List [] -> fail "%s: shard_scaling is empty" path
    | _ -> fail "%s: shard_scaling is not a list" path
  in
  let parsed =
    List.map
      (fun row ->
        match
          ( Obs.Json.(member "shards" row |> Option.map to_int),
            Obs.Json.member "qps" row,
            Obs.Json.(member "digest" row |> Option.map to_str) )
        with
        | Some (Some shards), Some qps, Some (Some digest) ->
            let qps =
              match qps with
              | Obs.Json.Float f -> f
              | Obs.Json.Int i -> float_of_int i
              | _ -> fail "%s: shard_scaling qps not a number" path
            in
            (shards, qps, digest)
        | _ -> fail "%s: malformed shard_scaling row" path)
      rows
  in
  (match parsed with
  | (_, _, d) :: rest ->
      List.iter
        (fun (shards, _, d') ->
          if d' <> d then
            fail
              "shard_scaling: %d-shard answers differ from 1-shard (digest \
               %s vs %s) — partitioning changed query results"
              shards d' d)
        rest
  | [] -> ());
  let qps_at n =
    match List.find_opt (fun (s, _, _) -> s = n) parsed with
    | Some (_, q, _) -> q
    | None -> fail "%s: shard_scaling has no %d-shard row" path n
  in
  let q1 = qps_at 1 and q4 = qps_at 4 in
  let cores =
    match Obs.Json.(get path "serve_cores" j |> to_int) with
    | Some n -> n
    | None -> fail "%s: serve_cores is not an int" path
  in
  if cores >= 8 then begin
    if q4 < 2.0 *. q1 then
      fail
        "shard_scaling: 4 shards at %.1f queries/s, under 2x the 1-shard \
         %.1f on %d cores — scatter-gather is not scaling reads"
        q4 q1 cores
  end
  else if cores >= 2 then begin
    if q4 < q1 then
      fail
        "shard_scaling: 4 shards slower than 1 on %d cores (%.1f vs %.1f \
         queries/s)"
        cores q4 q1
  end
  else if q4 < 0.5 *. q1 then
    fail
      "shard_scaling: single-core collapse — 4 shards at %.1f queries/s, \
       under half the 1-shard %.1f"
      q4 q1;
  (List.length parsed, q4 /. q1)

(* The bulk_load section: a 100k-entry bottom-up build must produce a
   tree identical to entry-at-a-time insertion, beat it in wall-clock,
   and pack pages at least as densely. *)
let check_bulk_load path j =
  let o = get path "bulk_load" j in
  let num name =
    match Obs.Json.member name o with
    | Some (Obs.Json.Float f) -> f
    | Some (Obs.Json.Int i) -> float_of_int i
    | _ -> fail "%s: bulk_load.%s not a number" path name
  in
  let entries = int_of_float (num "entries") in
  let bulk_ms = num "bulk_ms" and incr_ms = num "incr_ms" in
  (match Obs.Json.member "identical" o with
  | Some (Obs.Json.Bool true) -> ()
  | Some (Obs.Json.Bool false) ->
      fail "bulk_load: bulk and incremental trees differ"
  | _ -> fail "%s: bulk_load.identical missing" path);
  if entries < 100_000 then
    fail "bulk_load: only %d entries (need >= 100000)" entries;
  if bulk_ms >= incr_ms then
    fail "bulk_load: bulk build (%.1f ms) not faster than incremental (%.1f ms)"
      bulk_ms incr_ms;
  if num "bulk_avg_fill" < num "incr_avg_fill" then
    fail "bulk_load: bulk pages (%.2f avg fill) looser than incremental (%.2f)"
      (num "bulk_avg_fill") (num "incr_avg_fill");
  entries

let table1_rows path j =
  match get path "table1" j with
  | Obs.Json.List rows ->
      List.map
        (fun row ->
          match
            ( Obs.Json.(member "id" row |> Option.map to_str),
              Obs.Json.(member "parallel" row |> Option.map to_int),
              Obs.Json.(member "forward" row |> Option.map to_int) )
          with
          | Some (Some id), Some (Some p), Some (Some f) -> (id, (p, f))
          | _ -> fail "%s: malformed table1 row" path)
        rows
  | _ -> fail "%s: table1 is not a list" path

let () =
  if Array.length Sys.argv <> 3 then
    fail "usage: check_results <BENCH_results.json> <expected.json>";
  let results_path = Sys.argv.(1) and expected_path = Sys.argv.(2) in
  let r = parse results_path and e = parse expected_path in
  (* structural validation of the results file *)
  List.iter
    (fun k -> ignore (get results_path k r))
    [ "schema_version"; "quick"; "reps"; "objects"; "seed"; "metrics" ];
  (match get results_path "metrics" r with
  | Obs.Json.Obj kvs when kvs <> [] -> ()
  | _ -> fail "%s: metrics is not a non-empty object" results_path);
  (* the expectations are only valid for a matching database size *)
  List.iter
    (fun k ->
      if get results_path k r <> get expected_path k e then
        fail "%s: %S differs from %s — expectations are for another config"
          results_path k expected_path)
    [ "quick"; "table1_vehicles"; "seed" ];
  let got = table1_rows results_path r in
  let want = table1_rows expected_path e in
  List.iter
    (fun (id, (p, f)) ->
      match List.assoc_opt id got with
      | None -> fail "%s: missing table1 row %S" results_path id
      | Some (p', f') ->
          if p' <> p || f' <> f then
            fail
              "table1 row %S drifted: parallel %d -> %d, forward %d -> %d \
               (regenerate %s if intentional)"
              id p p' f f' expected_path)
    want;
  let n_ab = check_cache_ab results_path r in
  let n_ck = check_checksum_ab results_path r in
  let n_sv, serve_digest = check_serve_throughput results_path r in
  let n_mx = check_serve_mixed results_path r in
  let tel_pct = check_telemetry results_path r ~serve_digest in
  let al_fast, al_ref = check_descent_fastpath results_path r ~serve_digest in
  let cr_rate, cr_faults, cr_retries =
    check_chaos_resilience results_path r ~serve_digest
  in
  let n_ss, ss_speedup = check_shard_scaling results_path r in
  let n_bl = check_bulk_load results_path r in
  Printf.printf
    "check_results: %d table1 rows match %s; %d cache A/B rows warm<=cold \
     with hits; %d checksum A/B rows read-identical; %d serve rows \
     digest-identical with 4>=1 scaling; %d mixed rows digest-identical \
     with <1 fsync/commit at >=4 writers; telemetry digest-identical at \
     %+.1f%% p50; fast descent digest-identical at %.0f alloc words p50 \
     (reference %.0f); chaos digest-identical at %.1f%% success through \
     %.0f faults and %.0f retries; %d shard rows digest-identical at \
     %.2fx 4-shard speedup; bulk load of %d entries identical and faster\n"
    (List.length want) expected_path n_ab n_ck n_sv n_mx tel_pct al_fast al_ref
    (100. *. cr_rate) cr_faults cr_retries n_ss ss_speedup n_bl
