(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5), plus seven ablations (A1-A7), and wall-clock
   micro-benchmarks (Bechamel).

   Environment knobs:
     UINDEX_BENCH_QUICK=1        small database, few repetitions (smoke run)
     UINDEX_BENCH_REPS=n         repetitions per configuration (default 100,
                                 the paper's count)
     UINDEX_BENCH_OBJECTS=n      objects per experiment-2 database
                                 (default 150,000, the paper's count)
     UINDEX_BENCH_SKIP_TIMING=1  skip the Bechamel wall-clock section
     UINDEX_BENCH_JSON=path      machine-readable results file
                                 (default BENCH_results.json)

   Besides the human-readable report on stdout, the run always writes a
   line-oriented JSON summary (Table 1 page reads, the full metrics
   registry, a query-latency histogram) that CI diffs against checked-in
   expectations — see check_results.ml. *)

module Dg = Workload.Datagen
module Ex = Workload.Experiment
module Qg = Workload.Querygen
module Tb = Workload.Table
module Value = Objstore.Value
module Query = Uindex.Query
module Exec = Uindex.Exec
module Index = Uindex.Index

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let quick = Sys.getenv_opt "UINDEX_BENCH_QUICK" = Some "1"
let reps = env_int "UINDEX_BENCH_REPS" (if quick then 10 else 100)
let n_objects = env_int "UINDEX_BENCH_OBJECTS" (if quick then 20_000 else 150_000)
let seed = 20260706

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

(* --- Table 1 ----------------------------------------------------------------- *)

let h_query_ns =
  Obs.Metrics.histogram ~subsystem:"bench"
    ~help:"wall-clock ns per parallel point query (Table 1 database)"
    "query_ns"

let run_table1 () =
  section "Table 1: visited nodes, 12,000-record vehicle database (m = 10)";
  let n_vehicles = if quick then 2_000 else 12_000 in
  let e = Dg.exp1 ~n_vehicles ~seed () in
  Format.printf "color index: %a@.path index:  %a@.@." Index.pp_stats e.ch_color
    Index.pp_stats e.path_age;
  let rows = Ex.table1 e in
  print_string (Ex.render_table1 rows);
  print_string
    "(expected shapes, per the paper: subtree queries cheaper than\n\
    \ full-class queries; each extra range value adds little; parallel\n\
    \ well below forward on multi-class queries; partial-path cheaper\n\
    \ than full-path)\n";
  (* feed the latency histogram with a point-query sample on the same
     database; the JSON summary reports its quantiles *)
  let b = e.ext.b in
  let q =
    Query.class_hierarchy ~value:(V_eq (Value.Str "Red")) (P_subtree b.vehicle)
  in
  for _ = 1 to reps do
    ignore
      (Obs.Metrics.observe_span h_query_ns (fun () -> Exec.parallel e.ch_color q))
  done;
  (rows, n_vehicles, e)

(* --- cold vs warm A/B on Table-1 query classes ------------------------------- *)

(* The paper's counts are cold: every query starts from an empty buffer.
   Re-running the same query classes against a shared LRU pool measures
   the steady-state behaviour a real system would see.  Cold runs use the
   uncached path (identical to Table 1's accounting); warm runs attach a
   pool sized to the index (full residency) and re-run after one warming
   pass, so warm page reads are true physical fetches and the hits are
   reported separately. *)
type ab_row = {
  ab_id : string;
  ab_descr : string;
  ab_pool_pages : int;
  ab_cold : int;  (* page reads, uncached — Table 1's number *)
  ab_warm : int;  (* page reads with a warm pool *)
  ab_hits : int;  (* pool hits during the warm run *)
}

let run_cache_ab (e : Dg.exp1) =
  section "Cache A/B: cold (uncached) vs warm (shared LRU pool) page reads";
  let b = e.ext.b in
  let queries =
    [
      ( "1",
        "all Buses (subtree), all colors",
        Query.class_hierarchy ~value:Query.V_any (P_subtree e.ext.bus) );
      ( "1a",
        "all Buses (subtree), Red",
        Query.class_hierarchy
          ~value:(Query.V_eq (Value.Str "Red"))
          (P_subtree e.ext.bus) );
      ( "3",
        "Automobiles (subtree), all colors",
        Query.class_hierarchy ~value:Query.V_any (P_subtree b.automobile) );
    ]
  in
  let idx = e.ch_color in
  let rows =
    List.map
      (fun (ab_id, ab_descr, q) ->
        Index.set_cache_pages idx 0;
        let cold = Exec.parallel idx q in
        let ab_pool_pages =
          Storage.Pager.page_count (Btree.pager (Index.tree idx))
        in
        Index.set_cache_pages idx ab_pool_pages;
        ignore (Exec.parallel idx q);
        let warm = Exec.parallel idx q in
        Index.set_cache_pages idx 0;
        {
          ab_id;
          ab_descr;
          ab_pool_pages;
          ab_cold = cold.Exec.page_reads;
          ab_warm = warm.Exec.page_reads;
          ab_hits = warm.Exec.pool_hits;
        })
      queries
  in
  print_string
    (Tb.render
       ~header:[ "query"; "pool pages"; "cold reads"; "warm reads"; "warm hits" ]
       ~rows:
         (List.map
            (fun r ->
              [
                r.ab_id;
                string_of_int r.ab_pool_pages;
                string_of_int r.ab_cold;
                string_of_int r.ab_warm;
                string_of_int r.ab_hits;
              ])
            rows));
  print_string
    "(cold runs use the uncached path — identical to Table 1's accounting)\n";
  rows

(* --- checksum on/off A/B ------------------------------------------------------ *)

(* Guard for the corruption-proofing layer: verifying per-page checksums
   must not change the paper's metric.  The same index is built on two
   file-backed pagers — checksums on and off — and every Table-1 query
   class must read exactly the same pages (check_results hard-fails on
   drift).  The wall-clock delta is the entire cost of verification,
   measured here with plain gettimeofday so the row is present even when
   the Bechamel section is skipped. *)
type ck_row = {
  ck_id : string;
  ck_descr : string;
  ck_reads_on : int;
  ck_reads_off : int;
  ck_ns_on : float;
  ck_ns_off : float;
}

let run_checksum_ab (e : Dg.exp1) =
  section "Checksum A/B: page reads and wall-clock, checksums on vs off";
  let b = e.ext.b in
  let queries =
    [
      ( "1",
        "all Buses (subtree), all colors",
        Query.class_hierarchy ~value:Query.V_any (P_subtree e.ext.bus) );
      ( "1a",
        "all Buses (subtree), Red",
        Query.class_hierarchy
          ~value:(Query.V_eq (Value.Str "Red"))
          (P_subtree e.ext.bus) );
      ( "3",
        "Automobiles (subtree), all colors",
        Query.class_hierarchy ~value:Query.V_any (P_subtree b.automobile) );
    ]
  in
  let with_file_index ~checksums f =
    let path = Filename.temp_file "uindex_bench_ck" ".pages" in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ path; Storage.Pager.journal_path path ])
      (fun () ->
        let pager = Storage.Pager.create_file ~page_size:1024 ~checksums path in
        let idx =
          Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
        in
        Index.build idx e.store;
        Index.sync idx;
        Fun.protect
          ~finally:(fun () -> Storage.Pager.close pager)
          (fun () -> f idx))
  in
  let measure idx q =
    let o = Exec.parallel idx q in
    let runs = 5 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to runs do
      ignore (Exec.parallel idx q)
    done;
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int runs in
    (o.Exec.page_reads, ns)
  in
  let run ~checksums =
    with_file_index ~checksums (fun idx ->
        List.map (fun (_, _, q) -> measure idx q) queries)
  in
  let on_ = run ~checksums:true and off = run ~checksums:false in
  let rows =
    List.map2
      (fun ((ck_id, ck_descr, _), (ck_reads_on, ck_ns_on))
           (ck_reads_off, ck_ns_off) ->
        { ck_id; ck_descr; ck_reads_on; ck_reads_off; ck_ns_on; ck_ns_off })
      (List.combine queries on_)
      off
  in
  print_string
    (Tb.render
       ~header:[ "query"; "reads on"; "reads off"; "ns on"; "ns off" ]
       ~rows:
         (List.map
            (fun r ->
              [
                r.ck_id;
                string_of_int r.ck_reads_on;
                string_of_int r.ck_reads_off;
                Printf.sprintf "%.0f" r.ck_ns_on;
                Printf.sprintf "%.0f" r.ck_ns_off;
              ])
            rows));
  print_string
    "(page reads must be identical: checksums live out of band and cost\n\
    \ no extra fetches on the read path)\n";
  rows

(* --- Figures 5-8 -------------------------------------------------------------- *)

let set_counts_of n_classes =
  if n_classes >= 40 then [ 1; 10; 20; 30; 40 ] else [ 1; 2; 4; 6; 8 ]

let key_configs () =
  [
    ("unique keys", n_objects);
    ("100 different keys", 100);
    ("1000 different keys", 1000);
  ]

(* datasets are shared by figures 5-8 and the ablations *)
let datasets = Hashtbl.create 8

let dataset ~n_classes ~distinct_keys =
  let key = (n_classes, distinct_keys) in
  match Hashtbl.find_opt datasets key with
  | Some d -> d
  | None ->
      let cfg =
        { (Dg.default_exp2 ~n_classes ~distinct_keys) with n_objects; seed }
      in
      let t0 = Unix.gettimeofday () in
      let d = Dg.exp2 cfg in
      Printf.eprintf "[build] %d classes / %d keys: %.1fs\n%!" n_classes
        distinct_keys
        (Unix.gettimeofday () -. t0);
      Hashtbl.add datasets key d;
      d

(* set UINDEX_BENCH_CSV=<dir> to also emit one CSV per panel *)
let csv_dir = Sys.getenv_opt "UINDEX_BENCH_CSV"

let write_csv ~name series =
  match csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let oc = open_out (Filename.concat dir (name ^ ".csv")) in
      Printf.fprintf oc "sets,%s\n"
        (String.concat "," (List.map fst series));
      let xs =
        List.concat_map (fun (_, pts) -> List.map fst pts) series
        |> List.sort_uniq compare
      in
      List.iter
        (fun x ->
          Printf.fprintf oc "%d" x;
          List.iter
            (fun (_, pts) ->
              match List.assoc_opt x pts with
              | Some y -> Printf.fprintf oc ",%.2f" y
              | None -> Printf.fprintf oc ",")
            series;
          output_char oc '\n')
        xs;
      close_out oc

let run_panel ?csv_name ~kind ~n_classes ~distinct_label ~distinct_keys () =
  let d = dataset ~n_classes ~distinct_keys in
  let series =
    Ex.figure_series d ~kind ~set_counts:(set_counts_of n_classes) ~reps ~seed
  in
  (match csv_name with Some name -> write_csv ~name series | None -> ());
  print_string
    (Tb.render_series
       ~title:(Printf.sprintf "%d sets, %s" n_classes distinct_label)
       ~x_label:"sets" ~series)

let run_figure ~fig ~kind ~title =
  section
    (Printf.sprintf "Figure %d: %s (avg page reads over %d reps)" fig title reps);
  List.iter
    (fun n_classes ->
      List.iter
        (fun (distinct_label, distinct_keys) ->
          run_panel
            ~csv_name:(Printf.sprintf "fig%d_%dsets_%dkeys" fig n_classes distinct_keys)
            ~kind ~n_classes ~distinct_label ~distinct_keys ();
          print_newline ())
        (key_configs ()))
    [ 40; 8 ]

let run_figure8 () =
  section
    (Printf.sprintf
       "Figure 8: narrow ranges and set clustering, 1000 different keys (avg \
        page reads over %d reps)"
       reps);
  List.iter
    (fun (frac, label) ->
      subsection (Printf.sprintf "range = %s of keyspace" label);
      List.iter
        (fun n_classes ->
          run_panel
            ~csv_name:
              (Printf.sprintf "fig8_range%s_%dsets" label n_classes
              |> String.map (fun c -> if c = '%' || c = '.' then '_' else c))
            ~kind:(Ex.Range frac) ~n_classes
            ~distinct_label:"1000 different keys" ~distinct_keys:1000 ();
          print_newline ())
        [ 40; 8 ])
    [ (0.005, "0.5%"); (0.002, "0.2%") ];
  subsection "near vs non-near queried sets, range = 10%, 1000 keys";
  List.iter
    (fun n_classes ->
      run_panel
        ~csv_name:(Printf.sprintf "fig8_near_%dsets" n_classes)
        ~kind:(Ex.Range 0.10) ~n_classes
        ~distinct_label:"1000 different keys" ~distinct_keys:1000 ();
      print_newline ())
    [ 40; 8 ]

(* --- Ablation A1: front compression ------------------------------------------- *)

let run_ablation_compression () =
  section "Ablation A1: front compression on/off (U-index storage & reads)";
  let d = dataset ~n_classes:40 ~distinct_keys:1000 in
  let build ~front_coding =
    let pager = Storage.Pager.create ~page_size:d.cfg.page_size () in
    let config =
      { (Btree.default_config ~page_size:d.cfg.page_size) with front_coding }
    in
    let idx =
      Index.create_class_hierarchy ~config pager d.enc ~root:d.root ~attr:"k"
    in
    Array.iter
      (fun (k, cls, oid) ->
        Index.insert_entry idx ~value:(Value.Int k) [ (cls, oid) ])
      d.entries;
    idx
  in
  let measure idx =
    let tree = Index.tree idx in
    let pages = Storage.Pager.page_count (Btree.pager tree) in
    let rng = Workload.Rng.create seed in
    let total = ref 0 in
    for _ = 1 to reps do
      let sets = Qg.pick_sets rng Qg.Near ~classes:d.classes ~k:10 in
      let lo, hi = Qg.range_bounds rng ~distinct_keys:1000 ~frac:0.02 in
      let q =
        Query.class_hierarchy
          ~value:(V_range (Some (Value.Int lo), Some (Value.Int hi)))
          (Qg.union_of_classes sets)
      in
      let o = Exec.parallel idx q in
      total := !total + o.page_reads
    done;
    (pages, float_of_int !total /. float_of_int reps)
  in
  let on_idx = build ~front_coding:true in
  let on_pages, on_reads = measure on_idx in
  let off_pages, off_reads = measure (build ~front_coding:false) in
  print_string
    (Tb.render
       ~header:
         [ "front coding"; "index pages"; "avg reads (2% range, 10 near sets)" ]
       ~rows:
         [
           [ "on"; string_of_int on_pages; Tb.fmt_f on_reads ];
           [ "off"; string_of_int off_pages; Tb.fmt_f off_reads ];
         ]);
  let cs = Btree.compression_stats (Index.tree on_idx) in
  Printf.printf
    "key bytes: %d raw -> %d stored (%.1f%%); avg compressed prefix %.1f B\n"
    cs.Btree.raw_key_bytes cs.Btree.stored_key_bytes
    (100.0
    *. float_of_int cs.Btree.stored_key_bytes
    /. float_of_int (max 1 cs.Btree.raw_key_bytes))
    cs.Btree.avg_prefix_len

(* --- Ablation A2: four-way shootout -------------------------------------------- *)

let run_shootout () =
  section
    "Ablation A2: U-index vs CH-tree vs H-tree vs CG-tree (class-hierarchy \
     case, 40 classes, 1000 keys)";
  let d = dataset ~n_classes:40 ~distinct_keys:1000 in
  let entries =
    Array.to_list d.entries
    |> List.map (fun (k, cls, oid) -> (Value.Int k, cls, oid))
  in
  let page_size = d.cfg.page_size in
  let ch = Baselines.Ch_tree.create (Storage.Pager.create ~page_size ()) in
  Baselines.Ch_tree.build ch entries;
  let ht =
    Baselines.H_tree.create
      (Storage.Pager.create ~page_size ())
      ~classes:(Array.to_list d.classes)
  in
  Baselines.H_tree.build ht entries;
  let run_one ~sets ~lo ~hi ~exact structure =
    match structure with
    | `U ->
        let value =
          if exact then Query.V_eq (Value.Int lo)
          else Query.V_range (Some (Value.Int lo), Some (Value.Int hi))
        in
        let q = Query.class_hierarchy ~value (Qg.union_of_classes sets) in
        (Exec.parallel d.uindex q).page_reads
    | `Ch ->
        let s = Storage.Pager.stats (Baselines.Ch_tree.pager ch) in
        Storage.Stats.reset s;
        if exact then
          ignore (Baselines.Ch_tree.exact ch ~value:(Value.Int lo) ~sets)
        else
          ignore
            (Baselines.Ch_tree.range ch ~lo:(Value.Int lo) ~hi:(Value.Int hi)
               ~sets);
        s.reads
    | `H ->
        let s = Storage.Pager.stats (Baselines.H_tree.pager ht) in
        Storage.Stats.reset s;
        if exact then
          ignore (Baselines.H_tree.exact ht ~value:(Value.Int lo) ~sets)
        else
          ignore
            (Baselines.H_tree.range ht ~lo:(Value.Int lo) ~hi:(Value.Int hi)
               ~sets);
        s.reads
    | `Cg ->
        let kind = if exact then Ex.Exact else Ex.Range 0.0 in
        fst (Ex.cg_page_reads d ~kind ~lo ~hi ~sets)
  in
  let avg ~exact ~frac ~k structure =
    let rng = Workload.Rng.create (seed + Hashtbl.hash structure) in
    let total = ref 0 in
    for _ = 1 to reps do
      let sets = Qg.pick_sets rng Qg.Near ~classes:d.classes ~k in
      let lo, hi =
        if exact then
          let v = Qg.exact_value rng ~distinct_keys:1000 in
          (v, v)
        else Qg.range_bounds rng ~distinct_keys:1000 ~frac
      in
      total := !total + run_one ~sets ~lo ~hi ~exact structure
    done;
    float_of_int !total /. float_of_int reps
  in
  let structures =
    [ ("U-index", `U); ("CH-tree", `Ch); ("H-tree", `H); ("CG-tree", `Cg) ]
  in
  List.iter
    (fun (label, exact, frac) ->
      let series =
        List.map
          (fun (name, s) ->
            ( name,
              List.map (fun k -> (k, avg ~exact ~frac ~k s)) [ 1; 10; 20; 40 ] ))
          structures
      in
      print_string (Tb.render_series ~title:label ~x_label:"sets" ~series);
      print_newline ())
    [
      ("exact match", true, 0.0);
      ("range 10%", false, 0.10);
      ("range 2%", false, 0.02);
    ]

(* --- Ablation A3: update cost (Section 4.2) ------------------------------------ *)

let run_update_cost () =
  section
    "Ablation A3: update cost — page writes+reads per operation (Section 4.2)";
  let d = dataset ~n_classes:40 ~distinct_keys:1000 in
  let entries =
    Array.to_list d.entries
    |> List.map (fun (k, cls, oid) -> (Value.Int k, cls, oid))
  in
  let page_size = d.cfg.page_size in
  (* fresh copies so the shared dataset stays untouched *)
  let upager = Storage.Pager.create ~page_size () in
  let u = Index.create_class_hierarchy upager d.enc ~root:d.root ~attr:"k" in
  Array.iter
    (fun (k, cls, oid) -> Index.insert_entry u ~value:(Value.Int k) [ (cls, oid) ])
    d.entries;
  let ch = Baselines.Ch_tree.create (Storage.Pager.create ~page_size ()) in
  Baselines.Ch_tree.build ch entries;
  let ht =
    Baselines.H_tree.create
      (Storage.Pager.create ~page_size ())
      ~classes:(Array.to_list d.classes)
  in
  Baselines.H_tree.build ht entries;
  let cg = Baselines.Cg_tree.create (Storage.Pager.create ~page_size ()) in
  Baselines.Cg_tree.build cg entries;
  let ops = if quick then 200 else 2000 in
  let measure pager f =
    let s = Storage.Pager.stats pager in
    Storage.Stats.reset s;
    let rng = Workload.Rng.create 99 in
    for i = 0 to ops - 1 do
      let k = Workload.Rng.int rng 1000
      and cls = Workload.Rng.pick rng d.classes in
      f i k cls
    done;
    ( float_of_int s.Storage.Stats.reads /. float_of_int ops,
      float_of_int s.Storage.Stats.writes /. float_of_int ops )
  in
  let base = 1_000_000 in
  let rows =
    [
      ( "U-index",
        measure upager (fun i k cls ->
            Index.insert_entry u ~value:(Value.Int k) [ (cls, base + i) ]) );
      ( "CH-tree",
        measure
          (Baselines.Ch_tree.pager ch)
          (fun i k cls ->
            Baselines.Ch_tree.insert ch ~value:(Value.Int k) ~cls (base + i)) );
      ( "H-tree",
        measure (Baselines.H_tree.pager ht) (fun i k cls ->
            Baselines.H_tree.insert ht ~value:(Value.Int k) ~cls (base + i)) );
      ( "CG-tree",
        measure (Baselines.Cg_tree.pager cg) (fun i k cls ->
            Baselines.Cg_tree.insert cg ~value:(Value.Int k) ~cls (base + i)) );
    ]
  in
  print_string
    (Tb.render
       ~header:[ "structure"; "reads/insert"; "writes/insert" ]
       ~rows:
         (List.map
            (fun (n, (r, w)) -> [ n; Tb.fmt_f r; Tb.fmt_f w ])
            rows));
  (* the mid-path update: presidents switch companies; batched B-tree
     maintenance keeps it to a handful of page writes (Section 3.5) *)
  subsection "mid-path update: a company replaces its president (path index)";
  let pd = Dg.path_db ~n_vehicles:(if quick then 2_000 else 12_000) ~seed:7 () in
  let store = pd.e1.store in
  let b = pd.e1.ext.b in
  let db = Uindex.Db.create store in
  Uindex.Db.add_index db pd.e1.path_age;
  let companies = Objstore.Store.extent store ~deep:true b.company in
  let employees = Array.of_list (Objstore.Store.extent store ~deep:true b.employee) in
  let stats = Storage.Pager.stats (Btree.pager (Index.tree pd.e1.path_age)) in
  let rng = Workload.Rng.create 5 in
  let n = min 200 (List.length companies) in
  Storage.Stats.reset stats;
  List.iteri
    (fun i c ->
      if i < n then
        Uindex.Db.set_attr db c "president"
          (Value.Ref (Workload.Rng.pick rng employees)))
    companies;
  Printf.printf
    "%d president replacements: %.1f page reads, %.1f page writes per switch\n"
    n
    (float_of_int stats.Storage.Stats.reads /. float_of_int n)
    (float_of_int stats.Storage.Stats.writes /. float_of_int n);
  (* end-of-path inserts: the U-index writes one leaf; NIX also maintains
     its auxiliary structures (Section 4.4's update expectation) *)
  subsection "end-of-path object insertion: U-index path vs NIX";
  let enc = b.enc in
  let code c = Oodb_schema.Encoding.code enc c in
  ignore code;
  let rng = Workload.Rng.create 31 in
  let employees' = employees in
  let sample_chain i =
    let e = Workload.Rng.pick rng employees' in
    let c = List.nth companies (Workload.Rng.int rng (List.length companies)) in
    let age =
      match Objstore.Store.attr store e "age" with
      | Value.Int a -> a
      | _ -> 40
    in
    (Value.Int age, [ (Objstore.Store.class_of store e, e);
                      (Objstore.Store.class_of store c, c);
                      (b.vehicle, 2_000_000 + i) ])
  in
  let chains = List.init (if quick then 100 else 1000) sample_chain in
  let u_stats = Storage.Pager.stats (Btree.pager (Index.tree pd.e1.path_age)) in
  Storage.Stats.reset u_stats;
  List.iter
    (fun (v, chain) -> Index.insert_entry pd.e1.path_age ~value:v chain)
    chains;
  let u_w = float_of_int u_stats.Storage.Stats.writes /. float_of_int (List.length chains) in
  let nix_stats = Storage.Pager.stats (Baselines.Nix.pager pd.nix) in
  Storage.Stats.reset nix_stats;
  List.iter
    (fun (v, chain) -> Baselines.Nix.insert_chain pd.nix ~value:v chain)
    chains;
  let nix_w =
    float_of_int nix_stats.Storage.Stats.writes /. float_of_int (List.length chains)
  in
  Printf.printf "U-index: %.1f page writes/insert; NIX: %.1f (primary + auxiliary)\n"
    u_w nix_w

(* --- Ablation A4: storage cost (Section 4.2) ------------------------------------ *)

let run_storage_cost () =
  section "Ablation A4: storage cost — pages per structure (Section 4.2)";
  let d = dataset ~n_classes:40 ~distinct_keys:1000 in
  let entries =
    Array.to_list d.entries
    |> List.map (fun (k, cls, oid) -> (Value.Int k, cls, oid))
  in
  let page_size = d.cfg.page_size in
  let u_pages ~front_coding =
    let pager = Storage.Pager.create ~page_size () in
    let config =
      { (Btree.default_config ~page_size) with front_coding }
    in
    let idx =
      Index.create_class_hierarchy ~config pager d.enc ~root:d.root ~attr:"k"
    in
    Array.iter
      (fun (k, cls, oid) ->
        Index.insert_entry idx ~value:(Value.Int k) [ (cls, oid) ])
      d.entries;
    Storage.Pager.page_count pager
  in
  let ch_pager = Storage.Pager.create ~page_size () in
  let ch = Baselines.Ch_tree.create ch_pager in
  Baselines.Ch_tree.build ch entries;
  let ht_pager = Storage.Pager.create ~page_size () in
  let ht = Baselines.H_tree.create ht_pager ~classes:(Array.to_list d.classes) in
  Baselines.H_tree.build ht entries;
  let cg_pager = Storage.Pager.create ~page_size () in
  let cg = Baselines.Cg_tree.create cg_pager in
  Baselines.Cg_tree.build cg entries;
  print_string
    (Tb.render
       ~header:[ "structure"; "pages (1 KiB)" ]
       ~rows:
         [
           [ "U-index (front-coded)"; string_of_int (u_pages ~front_coding:true) ];
           [ "U-index (uncompressed)"; string_of_int (u_pages ~front_coding:false) ];
           [ "CH-tree"; string_of_int (Storage.Pager.page_count ch_pager) ];
           [ "H-tree"; string_of_int (Storage.Pager.page_count ht_pager) ];
           [ "CG-tree"; string_of_int (Storage.Pager.page_count cg_pager) ];
         ])

(* --- Ablation A5: path indexes vs NIX (Section 4.4) ------------------------------ *)

let run_path_comparison () =
  section
    "Ablation A5: path queries — U-index vs NIX vs Bertino-Kim indexes \
     (Section 4.4)";
  let pd = Dg.path_db ~n_vehicles:(if quick then 3_000 else 12_000) ~seed:13 () in
  let b = pd.e1.ext.b in
  let u = pd.e1.path_age in
  let reps' = if quick then 20 else 100 in
  let counted pager f =
    let s = Storage.Pager.stats pager in
    Storage.Stats.reset s;
    let n = f () in
    (s.Storage.Stats.reads, n)
  in
  let avg f =
    let rng = Workload.Rng.create 21 in
    let total = ref 0 and results = ref 0 in
    for _ = 1 to reps' do
      let age = 20 + Workload.Rng.int rng 51 in
      let reads, n = f age in
      total := !total + reads;
      results := !results + n
    done;
    ( float_of_int !total /. float_of_int reps',
      float_of_int !results /. float_of_int reps' )
  in
  let vehicle_sets =
    Workload.Paper_schema.vehicle_leaf_classes pd.e1.ext |> Array.to_list
  in
  let japanese_sets =
    Oodb_schema.Schema.subtree b.schema b.japanese_auto_company
  in
  let u_query age comps =
    let o = Exec.parallel u (Query.path ~value:(V_eq (Value.Int age)) comps) in
    (o.Exec.page_reads, List.length (Exec.head_oids o))
  in
  let full_path age =
    u_query age
      [
        Query.comp (P_subtree b.employee);
        Query.comp (P_subtree b.company);
        Query.comp (P_subtree b.vehicle);
      ]
  in
  (* 1. exact head retrieval: "vehicles whose president is AGE" *)
  let nix_exact age =
    counted (Baselines.Nix.pager pd.nix) (fun () ->
        Baselines.Nix.exact pd.nix ~value:(Value.Int age) ~sets:vehicle_sets
        |> List.length)
  in
  let bk what age =
    let idx = match what with `Path -> pd.bk_path | `Nested -> pd.bk_nested in
    counted (Baselines.Path_index.pager idx) (fun () ->
        List.length (Baselines.Path_index.exact idx ~value:(Value.Int age)))
  in
  (* 2. combined query: vehicles of Japanese auto companies with that
     president age — NIX joins its per-class lists through the auxiliary
     parent structures *)
  let u_combined age =
    u_query age
      [
        Query.comp (P_subtree b.employee);
        Query.comp (P_subtree b.japanese_auto_company);
        Query.comp (P_subtree b.vehicle);
      ]
  in
  let nix_combined age =
    counted (Baselines.Nix.pager pd.nix) (fun () ->
        Baselines.Nix.exact pd.nix ~value:(Value.Int age) ~sets:japanese_sets
        |> List.concat_map (fun (cls, c) -> Baselines.Nix.parents pd.nix ~cls c)
        |> List.sort_uniq compare |> List.length)
  in
  let bk_combined age =
    (* the BK path index scans its path records and filters *)
    let japanese c = List.mem c japanese_sets in
    counted (Baselines.Path_index.pager pd.bk_path) (fun () ->
        Baselines.Path_index.exact_restricted pd.bk_path ~value:(Value.Int age)
          ~pred:(fun inner ->
            match inner with
            | c :: _ -> japanese (Objstore.Store.class_of pd.e1.store c)
            | [] -> false)
        |> List.length)
  in
  let row label cells =
    label :: List.map (fun (r, _) -> Tb.fmt_f r) cells
    @ [ Tb.fmt_f (snd (List.hd cells)) ]
  in
  let cells_of f = avg f in
  print_string
    (Tb.render
       ~header:[ "query"; "U-index"; "NIX"; "BK path"; "BK nested"; "avg results" ]
       ~rows:
         [
           row "exact head retrieval"
             [
               cells_of full_path;
               cells_of nix_exact;
               cells_of (bk `Path);
               cells_of (bk `Nested);
             ];
           (let u = cells_of u_combined
            and nx = cells_of nix_combined
            and bp = cells_of bk_combined in
            [
              "combined (Japanese makers)";
              Tb.fmt_f (fst u);
              Tb.fmt_f (fst nx);
              Tb.fmt_f (fst bp);
              "-";
              Tb.fmt_f (snd u);
            ]);
         ]);
  Printf.printf
    "(NIX answers the combined query through its auxiliary parent trees;\n\
    \ the nested index cannot answer it at all — Section 4.4)\n"

(* --- Ablation A6: LRU buffer pool ------------------------------------------------ *)

let run_buffer_pool () =
  section
    "Ablation A6: steady-state U-index behaviour under a shared LRU buffer \
     pool (2% ranges, 10 near sets)";
  let d = dataset ~n_classes:40 ~distinct_keys:1000 in
  let tree = Index.tree d.uindex in
  let total_pages = Storage.Pager.page_count (Btree.pager tree) in
  let run_queries read =
    let rng = Workload.Rng.create 17 in
    for _ = 1 to if quick then 50 else 400 do
      let sets = Qg.pick_sets rng Qg.Near ~classes:d.classes ~k:10 in
      let lo, hi = Qg.range_bounds rng ~distinct_keys:1000 ~frac:0.02 in
      let q =
        Query.class_hierarchy
          ~value:(V_range (Some (Value.Int lo), Some (Value.Int hi)))
          (Qg.union_of_classes sets)
      in
      let plan =
        Uindex.Plan.compile ~enc:(Index.encoding d.uindex)
          ~ty:(Index.attr_ty d.uindex) q
      in
      let sc = Btree.Scanner.create tree ~read in
      let rec go = function
        | Some (e : Btree.entry) -> (
            match Uindex.Plan.classify plan e.Btree.key with
            | Uindex.Plan.Accept { next = Uindex.Plan.Seek k; _ }
            | Uindex.Plan.Reject (Uindex.Plan.Seek k) ->
                go (Btree.Scanner.seek sc k)
            | Uindex.Plan.Accept { next = Uindex.Plan.Advance; _ }
            | Uindex.Plan.Reject Uindex.Plan.Advance ->
                go (Btree.Scanner.next sc)
            | Uindex.Plan.Accept { next = Uindex.Plan.Stop; _ }
            | Uindex.Plan.Reject Uindex.Plan.Stop ->
                ())
        | None -> ()
      in
      match Uindex.Plan.lower plan with
      | Some lo -> go (Btree.Scanner.seek sc lo)
      | None -> ()
    done
  in
  let rows =
    List.map
      (fun capacity ->
        let pool = Storage.Buffer_pool.create ~capacity (Btree.pager tree) in
        run_queries (Storage.Buffer_pool.read pool);
        [
          string_of_int capacity;
          Printf.sprintf "%.1f%%" (100.0 *. Storage.Buffer_pool.hit_rate pool);
          string_of_int (Storage.Buffer_pool.misses pool);
        ])
      [ 64; 256; 1024 ]
  in
  Printf.printf "index occupies %d pages\n" total_pages;
  print_string
    (Tb.render ~header:[ "pool pages"; "hit rate"; "pager reads" ] ~rows)

(* --- Ablation A7: entry layout (Section 3.2.1) ----------------------------------- *)

let run_entry_layout () =
  section
    "Ablation A7: single-value vs grouped (OID-list) entries (Section 3.2.1)";
  List.iter
    (fun distinct_keys ->
      let d = dataset ~n_classes:40 ~distinct_keys in
      let g =
        Uindex.Grouped.create
          (Storage.Pager.create ~page_size:d.cfg.page_size ())
          d.enc ~root:d.root ~attr:"k"
      in
      Array.iter
        (fun (k, cls, oid) ->
          Uindex.Grouped.insert g ~value:(Value.Int k) ~cls oid)
        d.entries;
      let single_pages =
        Storage.Pager.page_count (Btree.pager (Index.tree d.uindex))
      in
      let grouped_pages =
        Storage.Pager.page_count (Btree.pager (Uindex.Grouped.tree g))
      in
      let avg kind =
        let rng = Workload.Rng.create 77 in
        let ts = ref 0 and tg = ref 0 in
        for _ = 1 to reps do
          let sets = Qg.pick_sets rng Qg.Near ~classes:d.classes ~k:10 in
          let value =
            match kind with
            | `Exact ->
                Query.V_eq
                  (Value.Int (Qg.exact_value rng ~distinct_keys))
            | `Range ->
                let lo, hi = Qg.range_bounds rng ~distinct_keys ~frac:0.02 in
                Query.V_range (Some (Value.Int lo), Some (Value.Int hi))
          in
          let q = Query.class_hierarchy ~value (Qg.union_of_classes sets) in
          ts := !ts + (Exec.parallel d.uindex q).Exec.page_reads;
          tg := !tg + snd (Uindex.Grouped.query g q)
        done;
        ( float_of_int !ts /. float_of_int reps,
          float_of_int !tg /. float_of_int reps )
      in
      let es, eg = avg `Exact and rs, rg = avg `Range in
      Printf.printf "\n%d distinct keys:\n" distinct_keys;
      print_string
        (Tb.render
           ~header:[ "layout"; "pages"; "exact (10 near sets)"; "2% range" ]
           ~rows:
             [
               [ "single-value"; string_of_int single_pages; Tb.fmt_f es; Tb.fmt_f rs ];
               [ "grouped"; string_of_int grouped_pages; Tb.fmt_f eg; Tb.fmt_f rg ];
             ]))
    [ 100; 1000 ]

(* --- wall-clock micro-benchmarks (Bechamel) ------------------------------------ *)

let run_timing () =
  section "Wall-clock micro-benchmarks (Bechamel, ns per query)";
  let open Bechamel in
  let open Toolkit in
  let d = dataset ~n_classes:40 ~distinct_keys:1000 in
  let rng = Workload.Rng.create seed in
  let sets10 = Qg.pick_sets rng Qg.Near ~classes:d.classes ~k:10 in
  let mk_exact v sets =
    Query.class_hierarchy ~value:(V_eq (Value.Int v)) (Qg.union_of_classes sets)
  in
  let mk_range lo hi sets =
    Query.class_hierarchy
      ~value:(V_range (Some (Value.Int lo), Some (Value.Int hi)))
      (Qg.union_of_classes sets)
  in
  let tests =
    [
      Test.make ~name:"fig5.u-exact"
        (Staged.stage (fun () ->
             ignore (Exec.parallel d.uindex (mk_exact 500 sets10))));
      Test.make ~name:"fig5.cg-exact"
        (Staged.stage (fun () ->
             ignore
               (Baselines.Cg_tree.exact d.cg ~value:(Value.Int 500) ~sets:sets10)));
      Test.make ~name:"fig6.u-range-10pc"
        (Staged.stage (fun () ->
             ignore (Exec.parallel d.uindex (mk_range 100 199 sets10))));
      Test.make ~name:"fig6.cg-range-10pc"
        (Staged.stage (fun () ->
             ignore
               (Baselines.Cg_tree.range d.cg ~lo:(Value.Int 100)
                  ~hi:(Value.Int 199) ~sets:sets10)));
      Test.make ~name:"fig7.u-range-2pc"
        (Staged.stage (fun () ->
             ignore (Exec.parallel d.uindex (mk_range 100 119 sets10))));
      Test.make ~name:"fig8.u-range-0.5pc"
        (Staged.stage (fun () ->
             ignore (Exec.parallel d.uindex (mk_range 100 104 sets10))));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"bench" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      match Hashtbl.find_opt results name with
      | Some r -> (
          match Analyze.OLS.estimates r with
          | Some [ est ] -> Printf.printf "%-32s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
      | None -> ())
    (List.sort compare names)

(* --- serve throughput: the concurrent query service -------------------------- *)

(* N client domains with persistent connections fire a fixed query mix at
   an in-process server with N workers; every client must get replies
   byte-identical to every other (one digest per row — check_results
   asserts the digests agree across thread counts, i.e. concurrent
   serving returns exactly the sequential answers).  Wall-clock, so this
   section runs even under UINDEX_BENCH_SKIP_TIMING (qps and p99 are what
   it exists to measure); best-of-3 per thread count damps scheduler
   noise. *)
type serve_row = {
  sv_threads : int;
  sv_queries : int;
  sv_qps : float;
  sv_p50_us : float;
  sv_p99_us : float;
  sv_digest : string;
}

let run_serve_throughput (e : Dg.exp1) =
  section "Serve throughput: N clients vs N workers, snapshot per request";
  let module Db = Uindex.Db in
  let module Server = Uindex_server.Server in
  let module Service = Uindex_server.Service in
  let module Client = Uindex_server.Client in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  Db.attach_index db e.path_age;
  let svc = Service.create ~schema:e.ext.b.schema db in
  let mix =
    [
      "query (Red, Bus*)";
      "query (White, Vehicle*)";
      "query-forward (Red, Bus*)";
      "query ([50-60], Employee*, Company*, Vehicle*)";
    ]
  in
  let total_queries = if quick then 240 else 480 in
  let dir = Filename.temp_file "uindex_bench_srv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let one_run threads =
    let path = Filename.concat dir (Printf.sprintf "srv%d.sock" threads) in
    let config =
      {
        (Server.default_config (Server.Unix_sock path)) with
        workers = threads;
        backlog = 64;
        request_timeout = 30.;
      }
    in
    let server = Server.start svc config in
    Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
    let per_client = total_queries / threads in
    let t0 = Unix.gettimeofday () in
    (* clients are pure I/O, so they ride on systhreads: the domains —
       and the parallelism under test — belong to the server's workers *)
    let slots = Array.make threads None in
    let clients =
      List.init threads (fun k ->
          Thread.create
            (fun () ->
              let c = Client.connect_unix path in
              Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
              let lat = Array.make per_client 0. in
              let cycle = Array.make (List.length mix) "" in
              for i = 0 to per_client - 1 do
                let line = List.nth mix (i mod List.length mix) in
                let q0 = Unix.gettimeofday () in
                let raw = Client.request_raw c line in
                lat.(i) <- Unix.gettimeofday () -. q0;
                (* the stream must be the first mix cycle repeating
                   exactly: snapshots make replies deterministic *)
                let j = i mod List.length mix in
                if i < List.length mix then cycle.(j) <- raw
                else if raw <> cycle.(j) then
                  failwith "serve_throughput: reply drifted between cycles"
              done;
              (* digest one canonical cycle, comparable across any
                 thread count and client count *)
              slots.(k) <-
                Some
                  (lat, Digest.string (String.concat "\n" (Array.to_list cycle))))
            ())
    in
    List.iter Thread.join clients;
    let elapsed = Unix.gettimeofday () -. t0 in
    let results =
      Array.to_list slots
      |> List.map (function
           | Some r -> r
           | None -> failwith "serve_throughput: a client thread died")
    in
    (* every client ran the same request sequence: their reply streams —
       and hence digests — must be identical *)
    let digest =
      match results with
      | (_, d) :: rest ->
          List.iter
            (fun (_, d') ->
              if d' <> d then
                failwith "serve_throughput: clients got different answers")
            rest;
          d
      | [] -> assert false
    in
    let lats = Array.concat (List.map fst results) in
    Array.sort compare lats;
    let pct p =
      1e6 *. lats.(min (Array.length lats - 1)
                     (p * Array.length lats / 100))
    in
    {
      sv_threads = threads;
      sv_queries = per_client * threads;
      sv_qps = float_of_int (per_client * threads) /. elapsed;
      sv_p50_us = pct 50;
      sv_p99_us = pct 99;
      sv_digest = digest;
    }
  in
  let best threads =
    let runs = List.init 3 (fun _ -> one_run threads) in
    List.fold_left
      (fun acc r -> if r.sv_qps > acc.sv_qps then r else acc)
      (List.hd runs) (List.tl runs)
  in
  let rows = List.map best [ 1; 2; 4 ] in
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  List.iter
    (fun r ->
      Printf.printf
        "%d thread(s): %7.1f queries/s  p50 %8.1f us  p99 %8.1f us  (%d \
         queries, digest %s)\n"
        r.sv_threads r.sv_qps r.sv_p50_us r.sv_p99_us r.sv_queries
        (Digest.to_hex r.sv_digest))
    rows;
  rows

(* --- mixed read/write serve throughput --------------------------------------- *)

(* The read-only rows above leave the write path idle; these rows run N
   reader clients against a file-backed index while N in-process writer
   threads insert and commit continuously.  What they demonstrate is
   group commit: at writer concurrency >= 4 the journal fsync count must
   amortize below one fsync per commit (check_results hard-fails
   otherwise).  Writers insert colors no benchmark query matches, so
   reader replies — and their digests — stay identical across rows and
   to a write-free run.  Runs even under UINDEX_BENCH_SKIP_TIMING: the
   fsyncs-per-commit ratio is scheduling-independent. *)
type mixed_row = {
  mx_threads : int; (* reader clients = server workers = writers *)
  mx_writers : int;
  mx_queries : int;
  mx_qps : float;
  mx_p50_us : float;
  mx_p99_us : float;
  mx_digest : string;
  mx_commits : int;
  mx_commits_per_sec : float;
  mx_fsyncs : int;
  mx_fsyncs_per_commit : float;
  mx_groups : int;
}

let metric name =
  Option.value ~default:0 (Obs.Metrics.find Obs.Metrics.default name)

let run_serve_mixed (e : Dg.exp1) =
  section "Serve throughput, mixed: N readers + N committing writers";
  let module Db = Uindex.Db in
  let module Server = Uindex_server.Server in
  let module Service = Uindex_server.Service in
  let module Client = Uindex_server.Client in
  let b = e.ext.b in
  let dir = Filename.temp_file "uindex_bench_mix" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let pages = Filename.concat dir "mixed.pages" in
  let pager = Storage.Pager.create_file ~page_size:1024 pages in
  let ch =
    Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
  in
  let db = Db.create e.store in
  Db.add_index db ch (* bulk-builds over the store *);
  Db.sync db;
  Db.set_group_window db 0.002;
  let svc = Service.create ~schema:b.schema db in
  (* arity-1 mix only: the sole attached index is the file-backed
     class-hierarchy one *)
  let mix =
    [ "query (Red, Bus*)"; "query (White, Vehicle*)"; "query-forward (Red, Bus*)" ]
  in
  let total_queries = if quick then 240 else 480 in
  let min_commits = if quick then 20 else 40 in
  (* replies carry per-request I/O accounting (page_reads etc.) that
     legitimately moves as writers grow the tree; only the answer itself
     must be invariant *)
  let stable raw =
    match Obs.Json.of_string raw with
    | j ->
        let take k = Option.map (fun v -> (k, v)) (Obs.Json.member k j) in
        Obs.Json.to_string
          (Obs.Json.Obj (List.filter_map take [ "ok"; "type"; "count"; "rows" ]))
    | exception Obs.Json.Parse_error _ -> raw
  in
  let one_run threads =
    let path = Filename.concat dir (Printf.sprintf "mix%d.sock" threads) in
    let config =
      {
        (Server.default_config (Server.Unix_sock path)) with
        workers = threads;
        backlog = 64;
        request_timeout = 30.;
      }
    in
    let fsyncs0 = metric "journal.fsyncs" in
    let groups0 = metric "journal.group_commits" in
    let server = Server.start svc config in
    Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
    let per_client = total_queries / threads in
    let stop_writers = Atomic.make false in
    let commit_counts = Array.make threads 0 in
    let t0 = Unix.gettimeofday () in
    let writers =
      List.init threads (fun w ->
          Thread.create
            (fun () ->
              let n = ref 0 in
              while (not (Atomic.get stop_writers)) || !n < min_commits do
                let color =
                  Printf.sprintf "zz-mix-%d-%d-%d" threads w !n
                in
                ignore
                  (Db.insert db ~cls:b.vehicle [ ("color", Value.Str color) ]);
                ignore (Db.commit db);
                incr n
              done;
              commit_counts.(w) <- !n)
            ())
    in
    let slots = Array.make threads None in
    let clients =
      List.init threads (fun k ->
          Thread.create
            (fun () ->
              let c = Client.connect_unix path in
              Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
              let lat = Array.make per_client 0. in
              let cycle = Array.make (List.length mix) "" in
              for i = 0 to per_client - 1 do
                let line = List.nth mix (i mod List.length mix) in
                let q0 = Unix.gettimeofday () in
                let raw = stable (Client.request_raw c line) in
                lat.(i) <- Unix.gettimeofday () -. q0;
                (* writers never touch queried values, so the answers
                   must still be the first cycle repeating exactly *)
                let j = i mod List.length mix in
                if i < List.length mix then cycle.(j) <- raw
                else if raw <> cycle.(j) then
                  failwith "serve_mixed: reply drifted between cycles"
              done;
              slots.(k) <-
                Some
                  (lat, Digest.string (String.concat "\n" (Array.to_list cycle))))
            ())
    in
    List.iter Thread.join clients;
    let read_elapsed = Unix.gettimeofday () -. t0 in
    Atomic.set stop_writers true;
    List.iter Thread.join writers;
    let elapsed = Unix.gettimeofday () -. t0 in
    (* sample before Server.stop: its drain runs one final sync *)
    let fsyncs = metric "journal.fsyncs" - fsyncs0 in
    let groups = metric "journal.group_commits" - groups0 in
    let commits = Array.fold_left ( + ) 0 commit_counts in
    let results =
      Array.to_list slots
      |> List.map (function
           | Some r -> r
           | None -> failwith "serve_mixed: a client thread died")
    in
    let digest =
      match results with
      | (_, d) :: rest ->
          List.iter
            (fun (_, d') ->
              if d' <> d then
                failwith "serve_mixed: clients got different answers")
            rest;
          d
      | [] -> assert false
    in
    let lats = Array.concat (List.map fst results) in
    Array.sort compare lats;
    let pct p =
      1e6 *. lats.(min (Array.length lats - 1) (p * Array.length lats / 100))
    in
    {
      mx_threads = threads;
      mx_writers = threads;
      mx_queries = per_client * threads;
      mx_qps = float_of_int (per_client * threads) /. read_elapsed;
      mx_p50_us = pct 50;
      mx_p99_us = pct 99;
      mx_digest = digest;
      mx_commits = commits;
      mx_commits_per_sec = float_of_int commits /. elapsed;
      mx_fsyncs = fsyncs;
      mx_fsyncs_per_commit =
        (if commits = 0 then infinity
         else float_of_int fsyncs /. float_of_int commits);
      mx_groups = groups;
    }
  in
  let rows = List.map one_run [ 1; 2; 4 ] in
  (try Sys.remove pages with Sys_error _ -> ());
  (try Sys.remove (pages ^ ".journal") with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  List.iter
    (fun r ->
      Printf.printf
        "%dr+%dw: %7.1f queries/s  %6.1f commits/s  %.2f fsyncs/commit (%d \
         commits in %d groups)  p99 %8.1f us  digest %s\n"
        r.mx_threads r.mx_writers r.mx_qps r.mx_commits_per_sec
        r.mx_fsyncs_per_commit r.mx_commits r.mx_groups r.mx_p99_us
        (Digest.to_hex r.mx_digest))
    rows;
  rows

(* --- telemetry overhead ------------------------------------------------------ *)

(* The same request mix as serve_throughput, driven straight through
   Service.serve_line (no sockets, so the comparison isolates exactly
   what telemetry adds): tracing off + slow log disabled vs tracing
   every request + a threshold-0 slow log that admits all of them.
   Reply bytes must not change — telemetry that alters responses would
   break the cross-mode digest — and check_results gates the traced p50
   at <= 110% of the untraced one.  Best-of-3 by p50 damps scheduler
   noise. *)
type tel_row = {
  tl_mode : string;
  tl_queries : int;
  tl_p50_us : float;
  tl_p99_us : float;
  tl_digest : string;
  tl_slow : int;
}

let run_telemetry_overhead (e : Dg.exp1) =
  section "Telemetry overhead: tracing + slow-log on vs off, fixed digest";
  let module Db = Uindex.Db in
  let module Service = Uindex_server.Service in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  Db.attach_index db e.path_age;
  let mix =
    [|
      "query (Red, Bus*)";
      "query (White, Vehicle*)";
      "query-forward (Red, Bus*)";
      "query ([50-60], Employee*, Company*, Vehicle*)";
    |]
  in
  let total = if quick then 240 else 480 in
  let make_service traced =
    let telemetry =
      if traced then
        {
          Service.tracing = true;
          sample_every = 1;
          slow_threshold_ns = 0;
          slow_capacity = 64;
        }
      else
        {
          Service.tracing = false;
          sample_every = 1;
          slow_threshold_ns = max_int;
          slow_capacity = 0;
        }
    in
    Service.create ~telemetry ~schema:e.ext.b.schema db
  in
  let one_run svc =
    let n_mix = Array.length mix in
    let lat = Array.make total 0. in
    let cycle = Array.make n_mix "" in
    let slow0 = metric "server.slow_queries" in
    for i = 0 to total - 1 do
      let line = mix.(i mod n_mix) in
      let q0 = Unix.gettimeofday () in
      let raw = Service.serve_line svc line in
      lat.(i) <- Unix.gettimeofday () -. q0;
      let j = i mod n_mix in
      if i < n_mix then cycle.(j) <- raw
      else if raw <> cycle.(j) then
        failwith "telemetry_overhead: reply drifted between cycles"
    done;
    let slow = metric "server.slow_queries" - slow0 in
    Array.sort compare lat;
    let pct p = 1e6 *. lat.(min (total - 1) (p * total / 100)) in
    (pct 50, pct 99, Digest.string (String.concat "\n" (Array.to_list cycle)), slow)
  in
  let row mode traced =
    let svc = make_service traced in
    (* one untimed warm cycle so first-touch costs don't bias run 1 *)
    Array.iter (fun l -> ignore (Service.serve_line svc l)) mix;
    let p50, p99, digest, slow =
      List.init 3 (fun _ -> one_run svc)
      |> List.fold_left
           (fun acc ((p50, _, _, _) as r) ->
             match acc with
             | Some ((best, _, _, _) as a) ->
                 Some (if p50 < best then r else a)
             | None -> Some r)
           None
      |> Option.get
    in
    {
      tl_mode = mode;
      tl_queries = total;
      tl_p50_us = p50;
      tl_p99_us = p99;
      tl_digest = digest;
      tl_slow = slow;
    }
  in
  let rows = [ row "off" false; row "on" true ] in
  List.iter
    (fun r ->
      Printf.printf
        "telemetry %-3s: p50 %8.1f us  p99 %8.1f us  (%d queries, %d slow \
         entries, digest %s)\n"
        r.tl_mode r.tl_p50_us r.tl_p99_us r.tl_queries r.tl_slow
        (Digest.to_hex r.tl_digest))
    rows;
  rows

(* --- descent fast path A/B --------------------------------------------------- *)

(* The compare-in-place descent (DESIGN.md §13) against the reference
   decode-every-node path, over the same served query mix as the
   telemetry rows.  Three things are gated by check_results: both
   digests must equal serve_throughput's (byte-identical answers), the
   fast p50 must be no worse than the reference p50 (within scheduler
   tolerance), and the fast per-request minor-allocation median must be
   strictly below the reference one — the whole point of the change.
   The allocation medians are scheduling-independent, so this section
   stays meaningful under UINDEX_BENCH_SKIP_TIMING.  Must run before
   serve_mixed mutates the store. *)
type descent_row = {
  ds_mode : string; (* "reference" | "fast" *)
  ds_queries : int;
  ds_p50_us : float;
  ds_p99_us : float;
  ds_alloc_p50_words : int; (* median Gc.minor_words delta per request *)
  ds_digest : string;
}

let run_descent_fastpath (e : Dg.exp1) =
  section "Descent fast path: compare-in-place vs reference decode, fixed digest";
  let module Db = Uindex.Db in
  let module Service = Uindex_server.Service in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  Db.attach_index db e.path_age;
  let telemetry =
    {
      Service.tracing = false;
      sample_every = 1;
      slow_threshold_ns = max_int;
      slow_capacity = 0;
    }
  in
  let mix =
    [|
      "query (Red, Bus*)";
      "query (White, Vehicle*)";
      "query-forward (Red, Bus*)";
      "query ([50-60], Employee*, Company*, Vehicle*)";
    |]
  in
  let total = if quick then 240 else 480 in
  let one_run svc =
    let n_mix = Array.length mix in
    let lat = Array.make total 0. in
    let alloc = Array.make total 0 in
    let cycle = Array.make n_mix "" in
    for i = 0 to total - 1 do
      let line = mix.(i mod n_mix) in
      let q0 = Unix.gettimeofday () in
      let w0 = Gc.minor_words () in
      let raw = Service.serve_line svc line in
      alloc.(i) <- int_of_float (Gc.minor_words () -. w0);
      lat.(i) <- Unix.gettimeofday () -. q0;
      let j = i mod n_mix in
      if i < n_mix then cycle.(j) <- raw
      else if raw <> cycle.(j) then
        failwith "descent_fastpath: reply drifted between cycles"
    done;
    Array.sort compare lat;
    Array.sort compare alloc;
    let pct p = 1e6 *. lat.(min (total - 1) (p * total / 100)) in
    ( pct 50,
      pct 99,
      alloc.(total / 2),
      Digest.string (String.concat "\n" (Array.to_list cycle)) )
  in
  let row mode fast =
    Btree.set_fast_descent fast;
    let svc = Service.create ~telemetry ~schema:e.ext.b.schema db in
    (* one untimed warm cycle: first-touch costs, and the per-domain
       scanner slot, settle before measurement *)
    Array.iter (fun l -> ignore (Service.serve_line svc l)) mix;
    let p50, p99, alloc_p50, digest =
      List.init 3 (fun _ -> one_run svc)
      |> List.fold_left
           (fun acc ((p50, _, _, _) as r) ->
             match acc with
             | Some ((best, _, _, _) as a) -> Some (if p50 < best then r else a)
             | None -> Some r)
           None
      |> Option.get
    in
    {
      ds_mode = mode;
      ds_queries = total;
      ds_p50_us = p50;
      ds_p99_us = p99;
      ds_alloc_p50_words = alloc_p50;
      ds_digest = digest;
    }
  in
  let rows =
    Fun.protect
      ~finally:(fun () -> Btree.set_fast_descent true)
      (fun () -> [ row "reference" false; row "fast" true ])
  in
  List.iter
    (fun r ->
      Printf.printf
        "descent %-9s: p50 %8.1f us  p99 %8.1f us  alloc p50 %7d words  (%d \
         queries, digest %s)\n"
        r.ds_mode r.ds_p50_us r.ds_p99_us r.ds_alloc_p50_words r.ds_queries
        (Digest.to_hex r.ds_digest))
    rows;
  rows

(* --- chaos resilience --------------------------------------------------------- *)

(* The serve_throughput mix fired through the retrying client at a
   chaos-armed server: connection resets, truncated replies, injected
   delays, slow-loris reads and worker crashes.  check_results gates the
   story: both rows' digests must equal serve_throughput's
   (byte-identical answers survive the storm), the chaos row must have
   actually injected faults and spent retries, and its success rate must
   stay above threshold — availability through retries, not luck. *)
type chaos_row = {
  cr_mode : string; (* "off" | "on" *)
  cr_queries : int;
  cr_ok : int; (* replies byte-identical to the fault-free answer *)
  cr_typed_errors : int; (* conclusive typed error replies *)
  cr_failed : int; (* retry exhaustion *)
  cr_retries : int;
  cr_faults : int; (* chaos.* injections during the run *)
  cr_worker_restarts : int;
  cr_success_rate : float;
  cr_digest : string; (* digest of one canonical reply cycle *)
}

let run_chaos_resilience (e : Dg.exp1) =
  section "Chaos resilience: retrying client vs fault-injected server";
  let module Db = Uindex.Db in
  let module Server = Uindex_server.Server in
  let module Service = Uindex_server.Service in
  let module Client = Uindex_server.Client in
  let module Chaos = Uindex_server.Chaos in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  Db.attach_index db e.path_age;
  let svc = Service.create ~schema:e.ext.b.schema db in
  let mix =
    [|
      "query (Red, Bus*)";
      "query (White, Vehicle*)";
      "query-forward (Red, Bus*)";
      "query ([50-60], Employee*, Company*, Vehicle*)";
    |]
  in
  (* the fault-free answers, straight from the service *)
  let expected = Array.map (fun l -> Service.serve_line svc l) mix in
  let total = if quick then 240 else 480 in
  let dir = Filename.temp_file "uindex_bench_chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let one_run mode chaos =
    let path = Filename.concat dir (Printf.sprintf "chaos_%s.sock" mode) in
    let config =
      {
        (Server.default_config (Server.Unix_sock path)) with
        workers = 2;
        backlog = 64;
        request_timeout = 5.;
        chaos = Option.map Chaos.arm chaos;
        restart_budget = 100_000;
      }
    in
    let faults0 = metric "chaos.faults" in
    let restarts0 = metric "server.worker_restarts" in
    let server = Server.start svc config in
    let ok = ref 0 and typed = ref 0 and failed = ref 0 in
    let policy =
      {
        Client.attempts = 10;
        base_delay = 0.002;
        max_delay = 0.05;
        jitter = 0.5;
        retry_seed = 42;
      }
    in
    let r = Client.retrying ~timeout:5. ~policy path in
    Fun.protect
      ~finally:(fun () ->
        Client.retry_close r;
        Server.stop server)
    @@ fun () ->
    for i = 0 to total - 1 do
      let j = i mod Array.length mix in
      match Client.retry_request_raw r mix.(j) with
      | raw ->
          if raw = expected.(j) then incr ok
          else begin
            (* the injector never mutates bytes, so anything else must
               be a typed error document *)
            (match Obs.Json.of_string raw with
            | exception _ -> failwith "chaos_resilience: unparseable reply"
            | resp ->
                if Uindex_server.Protocol.response_is_ok resp then
                  failwith "chaos_resilience: silent wrong answer");
            incr typed
          end
      | exception Client.Error (Client.Exhausted _) -> incr failed
    done;
    {
      cr_mode = mode;
      cr_queries = total;
      cr_ok = !ok;
      cr_typed_errors = !typed;
      cr_failed = !failed;
      cr_retries = Client.retry_count r;
      cr_faults = metric "chaos.faults" - faults0;
      cr_worker_restarts = metric "server.worker_restarts" - restarts0;
      cr_success_rate = float_of_int !ok /. float_of_int total;
      cr_digest = Digest.string (String.concat "\n" (Array.to_list expected));
    }
  in
  let storm =
    {
      Chaos.seed = 42;
      reset = 0.05;
      partial = 0.05;
      truncate = 0.02;
      delay = 0.10;
      slow_read = 0.05;
      crash = 0.03;
      delay_ms = 1.;
    }
  in
  let rows = [ one_run "off" None; one_run "on" (Some storm) ] in
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  List.iter
    (fun r ->
      Printf.printf
        "chaos %-3s: %d/%d ok (%.1f%%)  %d typed errors  %d failed  %d \
         retries  %d faults  %d respawns  digest %s\n"
        r.cr_mode r.cr_ok r.cr_queries (100. *. r.cr_success_rate)
        r.cr_typed_errors r.cr_failed r.cr_retries r.cr_faults
        r.cr_worker_restarts (Digest.to_hex r.cr_digest))
    rows;
  rows

(* --- bulk load vs incremental build ------------------------------------------ *)

(* Builds the same 100k-entry tree twice — bottom-up bulk load vs
   entry-at-a-time insertion — and checks the results are identical,
   the bulk pages denser, and the bulk build faster in wall-clock
   (check_results gates on all three). *)
type bulk_report = {
  bl_entries : int;
  bl_bulk_ms : float;
  bl_incr_ms : float;
  bl_identical : bool;
  bl_bulk_fill : float;
  bl_incr_fill : float;
}

let run_bulk_load () =
  section "Bulk load: bottom-up build vs entry-at-a-time, 100k entries";
  let n = 100_000 in
  let entry i = (Printf.sprintf "key%08d" i, Printf.sprintf "v%d" (i * 7)) in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, 1e3 *. (Unix.gettimeofday () -. t0))
  in
  let bulk_tree = Btree.create (Storage.Pager.create ~page_size:1024 ()) in
  let (), bulk_ms =
    time (fun () -> Btree.bulk_load bulk_tree (Seq.init n entry))
  in
  let incr_tree = Btree.create (Storage.Pager.create ~page_size:1024 ()) in
  let (), incr_ms =
    time (fun () ->
        for i = 0 to n - 1 do
          let k, v = entry i in
          Btree.insert incr_tree ~key:k ~value:v
        done)
  in
  let digest t =
    let b = Buffer.create (n * 16) in
    Btree.iter t (fun e ->
        Buffer.add_string b e.Btree.key;
        Buffer.add_char b '=';
        Buffer.add_string b (e.value ());
        Buffer.add_char b '\n');
    Digest.string (Buffer.contents b)
  in
  let rb = Btree.check_invariants bulk_tree in
  let ri = Btree.check_invariants incr_tree in
  let identical =
    digest bulk_tree = digest incr_tree && rb.Btree.entries = ri.Btree.entries
  in
  let r =
    {
      bl_entries = rb.Btree.entries;
      bl_bulk_ms = bulk_ms;
      bl_incr_ms = incr_ms;
      bl_identical = identical;
      bl_bulk_fill = rb.Btree.avg_fill;
      bl_incr_fill = ri.Btree.avg_fill;
    }
  in
  Printf.printf
    "bulk %.1f ms vs incremental %.1f ms (%.1fx); identical=%b; avg fill \
     %.2f vs %.2f\n"
    r.bl_bulk_ms r.bl_incr_ms
    (r.bl_incr_ms /. Float.max 0.001 r.bl_bulk_ms)
    r.bl_identical r.bl_bulk_fill r.bl_incr_fill;
  r

(* --- shard scaling: scatter-gather over 1/2/4 COD-range shards --------------- *)

(* The same database partitioned into k COD-range shards, each shard
   behind its own server (own worker domains), with a scatter-gather
   router in front; a fixed client pool drives a fixed query mix and
   only k varies.  Correctness: the canonical projection of every reply
   (cost fields dropped — they are deployment-dependent sums) must be
   byte-identical at every shard count; one digest per row, and
   check_results asserts the rows agree.  Scaling: single-shard queries
   spread across shards and spanning queries fan out in parallel, so on
   a host with cores to spare the 4-shard deployment must beat 1-shard
   by at least 2x (gated by check_results when serve_cores >= 8; an
   anti-collapse floor otherwise).  Clients start the mix at staggered
   offsets so lock-step rounds cannot pile onto one shard. *)
type shard_scaling_row = {
  ss_shards : int;
  ss_queries : int;
  ss_qps : float;
  ss_p50_us : float;
  ss_p99_us : float;
  ss_digest : string;
}

let run_shard_scaling (e : Dg.exp1) =
  section "Shard scaling: scatter-gather router over 1/2/4 COD-range shards";
  let module Db = Uindex.Db in
  let module Server = Uindex_server.Server in
  let module Service = Uindex_server.Service in
  let module Client = Uindex_server.Client in
  let module Smap = Uindex_shard.Shard_map in
  let module Splitter = Uindex_shard.Splitter in
  let module Router = Uindex_shard.Router in
  let b = e.ext.b in
  let mix =
    [
      "query (Red, Bus*)";
      "query (Blue, Automobile*)";
      "query (Green, Truck*)";
      "query (Black, CompactAutomobile)";
      "query (White, Vehicle*)";
      "query ([50-60], Employee*, Company*, Vehicle*)";
    ]
  in
  let n_mix = List.length mix in
  let clients = 8 in
  let total_queries = if quick then 240 else 480 in
  let per_client = total_queries / clients in
  let dir = Filename.temp_file "uindex_bench_shard" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let one_deployment shards =
    let bounds =
      if shards = 1 then []
      else Splitter.choose_boundaries ~source:e.ch_color ~shards
    in
    let rec ranges lo = function
      | [] -> [ { Smap.lo; hi = None; file = None; endpoint = None } ]
      | hi :: rest ->
          { Smap.lo; hi = Some hi; file = None; endpoint = None }
          :: ranges hi rest
    in
    let map = Smap.make (ranges "" bounds) in
    let shard_servers =
      Array.init (Smap.count map) (fun i ->
          let db = Db.create e.store in
          Db.attach_index db
            (Splitter.restrict ~source:e.ch_color map i (Storage.Pager.create ()));
          Db.attach_index db
            (Splitter.restrict ~source:e.path_age map i (Storage.Pager.create ()));
          let svc = Service.create ~schema:b.schema db in
          let path = Filename.concat dir (Printf.sprintf "s%d_%d.sock" shards i) in
          let config =
            {
              (Server.default_config (Server.Unix_sock path)) with
              workers = 2;
              backlog = 64;
              request_timeout = 30.;
            }
          in
          (Server.start svc config, path))
    in
    let router =
      Router.create ~schema:b.schema ~enc:b.enc ~map
        ~backends:(Array.map (fun (_, p) -> Router.Remote p) shard_servers)
        ()
    in
    let rpath = Filename.concat dir (Printf.sprintf "router%d.sock" shards) in
    let rconfig =
      {
        (Server.default_config (Server.Unix_sock rpath)) with
        workers = clients;
        backlog = 64;
        request_timeout = 30.;
      }
    in
    let rserver = Server.start_handler (Router.handler router) rconfig in
    let one_run () =
      let slots = Array.make clients None in
      let t0 = Unix.gettimeofday () in
      let threads =
        List.init clients (fun k ->
            Thread.create
              (fun () ->
                let c = Client.connect_unix rpath in
                Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
                let lat = Array.make per_client 0. in
                let cycle = Array.make n_mix "" in
                for i = 0 to per_client - 1 do
                  (* staggered start: client k leads with mix slot k *)
                  let j = (i + k) mod n_mix in
                  let q0 = Unix.gettimeofday () in
                  let raw = Client.request_raw c (List.nth mix j) in
                  lat.(i) <- Unix.gettimeofday () -. q0;
                  let canon = Router.canonical_projection raw in
                  if i < n_mix then cycle.(j) <- canon
                  else if canon <> cycle.(j) then
                    failwith "shard_scaling: reply drifted between cycles"
                done;
                slots.(k) <-
                  Some
                    ( lat,
                      Digest.string (String.concat "\n" (Array.to_list cycle))
                    ))
              ())
      in
      List.iter Thread.join threads;
      let elapsed = Unix.gettimeofday () -. t0 in
      let results =
        Array.to_list slots
        |> List.map (function
             | Some r -> r
             | None -> failwith "shard_scaling: a client thread died")
      in
      let digest =
        match results with
        | (_, d) :: rest ->
            List.iter
              (fun (_, d') ->
                if d' <> d then
                  failwith "shard_scaling: clients got different answers")
              rest;
            d
        | [] -> assert false
      in
      let lats = Array.concat (List.map fst results) in
      Array.sort compare lats;
      let pct p =
        1e6 *. lats.(min (Array.length lats - 1) (p * Array.length lats / 100))
      in
      {
        ss_shards = Smap.count map;
        ss_queries = per_client * clients;
        ss_qps = float_of_int (per_client * clients) /. elapsed;
        ss_p50_us = pct 50;
        ss_p99_us = pct 99;
        ss_digest = digest;
      }
    in
    Fun.protect
      ~finally:(fun () ->
        Server.stop rserver;
        Array.iter (fun (s, _) -> Server.stop s) shard_servers)
      (fun () ->
        (* shard indexes are built once per deployment; best-of-3 timed
           client phases damp scheduler noise *)
        let runs = List.init 3 (fun _ -> one_run ()) in
        List.fold_left
          (fun acc r -> if r.ss_qps > acc.ss_qps then r else acc)
          (List.hd runs) (List.tl runs))
  in
  let rows = List.map one_deployment [ 1; 2; 4 ] in
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  List.iter
    (fun r ->
      Printf.printf
        "%d shard(s): %7.1f queries/s  p50 %8.1f us  p99 %8.1f us  (%d \
         queries, canonical digest %s)\n"
        r.ss_shards r.ss_qps r.ss_p50_us r.ss_p99_us r.ss_queries
        (Digest.to_hex r.ss_digest))
    rows;
  rows

(* --- machine-readable results ---------------------------------------------- *)

let json_path =
  Option.value ~default:"BENCH_results.json"
    (Sys.getenv_opt "UINDEX_BENCH_JSON")

let write_results ~t1_rows ~t1_vehicles ~cache_ab ~checksum_ab ~serve ~mixed
    ~telemetry ~descent ~chaos ~bulk ~shard =
  let open Obs.Json in
  let row (r : Ex.t1_row) =
    Obj
      [
        ("id", Str r.id);
        ("descr", Str r.descr);
        ("results", Int r.results);
        ("parallel", Int r.parallel);
        ("forward", Int r.forward);
      ]
  in
  let ab_row r =
    let denom = r.ab_warm + r.ab_hits in
    Obj
      [
        ("id", Str r.ab_id);
        ("descr", Str r.ab_descr);
        ("pool_pages", Int r.ab_pool_pages);
        ("cold_reads", Int r.ab_cold);
        ("warm_reads", Int r.ab_warm);
        ("warm_pool_hits", Int r.ab_hits);
        ( "warm_hit_rate",
          Float
            (if denom = 0 then 0.
             else float_of_int r.ab_hits /. float_of_int denom) );
      ]
  in
  let ck_row r =
    Obj
      [
        ("id", Str r.ck_id);
        ("descr", Str r.ck_descr);
        ("reads_on", Int r.ck_reads_on);
        ("reads_off", Int r.ck_reads_off);
        ("ns_on", Float r.ck_ns_on);
        ("ns_off", Float r.ck_ns_off);
      ]
  in
  let sv_row r =
    Obj
      [
        ("threads", Int r.sv_threads);
        ("queries", Int r.sv_queries);
        ("qps", Float r.sv_qps);
        ("p50_us", Float r.sv_p50_us);
        ("p99_us", Float r.sv_p99_us);
        ("digest", Str (Digest.to_hex r.sv_digest));
      ]
  in
  let mx_row r =
    Obj
      [
        ("threads", Int r.mx_threads);
        ("writers", Int r.mx_writers);
        ("queries", Int r.mx_queries);
        ("qps", Float r.mx_qps);
        ("p50_us", Float r.mx_p50_us);
        ("p99_us", Float r.mx_p99_us);
        ("digest", Str (Digest.to_hex r.mx_digest));
        ("commits", Int r.mx_commits);
        ("commits_per_sec", Float r.mx_commits_per_sec);
        ("fsyncs", Int r.mx_fsyncs);
        ("fsyncs_per_commit", Float r.mx_fsyncs_per_commit);
        ("groups", Int r.mx_groups);
      ]
  in
  let tel_row r =
    Obj
      [
        ("mode", Str r.tl_mode);
        ("queries", Int r.tl_queries);
        ("p50_us", Float r.tl_p50_us);
        ("p99_us", Float r.tl_p99_us);
        ("digest", Str (Digest.to_hex r.tl_digest));
        ("slow_entries", Int r.tl_slow);
      ]
  in
  let ds_row r =
    Obj
      [
        ("mode", Str r.ds_mode);
        ("queries", Int r.ds_queries);
        ("p50_us", Float r.ds_p50_us);
        ("p99_us", Float r.ds_p99_us);
        ("alloc_p50_words", Int r.ds_alloc_p50_words);
        ("digest", Str (Digest.to_hex r.ds_digest));
      ]
  in
  let cr_row r =
    Obj
      [
        ("mode", Str r.cr_mode);
        ("queries", Int r.cr_queries);
        ("ok", Int r.cr_ok);
        ("typed_errors", Int r.cr_typed_errors);
        ("failed", Int r.cr_failed);
        ("retries", Int r.cr_retries);
        ("faults", Int r.cr_faults);
        ("worker_restarts", Int r.cr_worker_restarts);
        ("success_rate", Float r.cr_success_rate);
        ("digest", Str (Digest.to_hex r.cr_digest));
      ]
  in
  let ss_row r =
    Obj
      [
        ("shards", Int r.ss_shards);
        ("queries", Int r.ss_queries);
        ("qps", Float r.ss_qps);
        ("p50_us", Float r.ss_p50_us);
        ("p99_us", Float r.ss_p99_us);
        ("digest", Str (Digest.to_hex r.ss_digest));
      ]
  in
  let bulk_obj =
    Obj
      [
        ("entries", Int bulk.bl_entries);
        ("bulk_ms", Float bulk.bl_bulk_ms);
        ("incr_ms", Float bulk.bl_incr_ms);
        ("identical", Bool bulk.bl_identical);
        ("bulk_avg_fill", Float bulk.bl_bulk_fill);
        ("incr_avg_fill", Float bulk.bl_incr_fill);
      ]
  in
  let j =
    Obj
      [
        ("schema_version", Int 9);
        ("quick", Bool quick);
        ("reps", Int reps);
        ("objects", Int n_objects);
        ("seed", Int seed);
        ("table1_vehicles", Int t1_vehicles);
        ("table1", List (List.map row t1_rows));
        ("cache_ab", List (List.map ab_row cache_ab));
        ("checksum_ab", List (List.map ck_row checksum_ab));
        (* scaling assertions only make sense with real cores to scale
           onto; check_results keys its serve gate on this *)
        ("serve_cores", Int (Domain.recommended_domain_count ()));
        ("serve_throughput", List (List.map sv_row serve));
        ("serve_mixed", List (List.map mx_row mixed));
        ("telemetry_overhead", List (List.map tel_row telemetry));
        ("descent_fastpath", List (List.map ds_row descent));
        ("chaos_resilience", List (List.map cr_row chaos));
        ("shard_scaling", List (List.map ss_row shard));
        ("bulk_load", bulk_obj);
        ("metrics", Obs.Metrics.to_json Obs.Metrics.default);
      ]
  in
  let oc = open_out json_path in
  output_string oc (to_multiline j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" json_path

let () =
  Printf.printf "U-index reproduction benchmarks (reps=%d, objects=%d%s)\n" reps
    n_objects
    (if quick then ", QUICK" else "");
  let t1_rows, t1_vehicles, e1 = run_table1 () in
  let cache_ab = run_cache_ab e1 in
  let checksum_ab = run_checksum_ab e1 in
  run_figure ~fig:5 ~kind:Ex.Exact ~title:"exact match queries";
  run_figure ~fig:6 ~kind:(Ex.Range 0.10) ~title:"range queries, 10% of keyspace";
  run_figure ~fig:7 ~kind:(Ex.Range 0.02) ~title:"range queries, 2% of keyspace";
  run_figure8 ();
  run_ablation_compression ();
  run_shootout ();
  run_update_cost ();
  run_storage_cost ();
  run_path_comparison ();
  run_buffer_pool ();
  run_entry_layout ();
  if Sys.getenv_opt "UINDEX_BENCH_SKIP_TIMING" <> Some "1" then run_timing ();
  (* wall-clock by nature, so not gated on SKIP_TIMING: its qps/p99 rows
     and cross-thread digests are what check_results gates on *)
  let serve = run_serve_throughput e1 in
  (* telemetry must run before serve_mixed mutates e1's store: its digest
     is gated against serve_throughput's *)
  let telemetry = run_telemetry_overhead e1 in
  (* same store-unmutated constraint: both descent digests are gated
     against serve_throughput's *)
  let descent = run_descent_fastpath e1 in
  (* chaos replays the same mix, so the store must still be unmutated:
     its digests are gated against serve_throughput's *)
  let chaos = run_chaos_resilience e1 in
  (* the splitter reads e1's indexes, so this too must precede the
     store-mutating mixed section *)
  let shard = run_shard_scaling e1 in
  let bulk = run_bulk_load () in
  (* last: its writers mutate e1's store *)
  let mixed = run_serve_mixed e1 in
  write_results ~t1_rows ~t1_vehicles ~cache_ab ~checksum_ab ~serve ~mixed
    ~telemetry ~descent ~chaos ~bulk ~shard
