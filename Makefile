.PHONY: all build test bench bench-quick examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# full reproduction of the paper's tables and figures (~5 minutes)
bench:
	dune exec bench/main.exe

# ~10 second smoke version
bench-quick:
	UINDEX_BENCH_QUICK=1 dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/vehicle_registry.exe
	dune exec examples/schema_evolution.exe
	dune exec examples/index_shootout.exe
	dune exec examples/division_analytics.exe

clean:
	dune clean
