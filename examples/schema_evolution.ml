(* Schema evolution (Section 4.3 and Fig. 4): add classes to an encoded,
   indexed, populated database without recoding anything, and break a REF
   cycle by partitioning the REF edges into acyclic groups.

     dune exec examples/schema_evolution.exe *)

module Schema = Oodb_schema.Schema
module Code = Oodb_schema.Code
module Encoding = Oodb_schema.Encoding
module Graph = Oodb_schema.Graph
module Ps = Workload.Paper_schema
module Value = Objstore.Value
module Query = Uindex.Query
module Index = Uindex.Index
module Exec = Uindex.Exec
module Db = Uindex.Db

let () =
  let b = Ps.base () in
  let ex = Ps.example1 b in
  let db = Db.create ex.store in
  let ch =
    Index.create_class_hierarchy (Storage.Pager.create ()) b.enc
      ~root:b.vehicle ~attr:"color"
  in
  Db.add_index db ch;

  print_endline "codes before evolution:";
  Format.printf "%a@." Encoding.pp b.enc;

  (* Fig. 4a: a new class inside an existing hierarchy.  It slots into the
     code space under its parent; nothing else is recoded. *)
  let sports =
    Schema.add_class b.schema ~parent:b.automobile ~name:"SportsCar" ~attrs:[]
  in
  Encoding.assign_new_class b.enc sports;
  let m1 =
    Db.insert db ~cls:sports
      [
        ("name", Value.Str "Stratos");
        ("color", Value.Str "Red");
        ("manufactured_by", Value.Ref ex.c2);
      ]
  in
  Db.check db;
  let red_autos =
    Exec.parallel ch
      (Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree b.automobile))
  in
  assert (List.mem m1 (Exec.head_oids red_autos));
  Printf.printf "new subclass %s indexed under %s; red automobiles now: %s\n"
    (Schema.name b.schema sports)
    (Code.to_string (Encoding.code b.enc b.automobile))
    (String.concat "," (List.map string_of_int (Exec.head_oids red_autos)));

  (* Fig. 4b: a new hierarchy root, placed *between* existing roots so its
     REF constraints hold: Dealer references both Company and City, so its
     top unit must come after both of theirs. *)
  let dealer =
    Schema.add_class b.schema ~name:"Dealer"
      ~attrs:
        [
          ("name", Schema.String);
          ("franchise_of", Schema.Ref b.company);
          ("based_in", Schema.Ref b.city);
        ]
  in
  Encoding.assign_new_class b.enc dealer;
  let dealer_code = Encoding.code b.enc dealer in
  assert (Code.compare (Encoding.code b.enc b.company) dealer_code < 0);
  assert (Code.compare (Encoding.code b.enc b.city) dealer_code < 0);
  Printf.printf "new root Dealer coded %s (after Company %s and City %s)\n"
    (Code.to_string dealer_code)
    (Code.to_string (Encoding.code b.enc b.company))
    (Code.to_string (Encoding.code b.enc b.city));
  (* ... so a path index over the new REF is immediately encodable *)
  let dealer_age =
    Index.create_path (Storage.Pager.create ()) b.enc ~head:dealer
      ~refs:[ "franchise_of"; "president" ]
      ~attr:"age"
  in
  Db.add_index db dealer_age;
  let d1 =
    Db.insert db ~cls:dealer
      [ ("name", Value.Str "AutoPlaza"); ("franchise_of", Value.Ref ex.c2) ]
  in
  Db.check db;
  let got =
    Exec.parallel dealer_age
      (Query.path ~value:(V_eq (Int 50))
         [
           Query.comp (P_subtree b.employee);
           Query.comp (P_subtree b.company);
           Query.comp (P_subtree dealer);
         ])
  in
  assert (Exec.head_oids got = [ d1 ]);
  print_endline "path index over the evolved schema answers queries";

  (* Section 4.3: REF cycles.  OWN (Employee -> Vehicle) plus USE
     (Vehicle -> Employee) makes the lifted root graph cyclic; encoding
     must fail, and partitioning the REF edges into acyclic groups — one
     encoding per group, queries routed by their referencing attribute —
     resolves it. *)
  let s2 = Schema.create () in
  let emp = Schema.add_class s2 ~name:"Employee" ~attrs:[ ("age", Schema.Int) ] in
  let veh =
    Schema.add_class s2 ~name:"Vehicle"
      ~attrs:[ ("plate", Schema.String); ("used_by", Schema.Ref emp) ]
  in
  Schema.add_attr s2 emp "owns" (Schema.Ref veh);
  (match Encoding.assign s2 with
  | exception Encoding.Cycle cyc ->
      Printf.printf "cycle detected, as expected: %s\n" (String.concat " <-> " cyc)
  | _ -> failwith "expected a cycle");
  let groups =
    Graph.partition_acyclic
      (List.map (fun (src, _, dst) -> (src, dst)) (Schema.ref_edges s2))
  in
  Printf.printf "REF edges partitioned into %d acyclic groups\n"
    (List.length groups);
  let encodings =
    List.map (fun edges -> Encoding.assign ~ref_edges:edges s2) groups
  in
  (* each group yields a consistent encoding for the indexes over its edges *)
  List.iteri
    (fun i enc ->
      Printf.printf "encoding %d: Employee=%s Vehicle=%s\n" i
        (Code.to_string (Encoding.code enc emp))
        (Code.to_string (Encoding.code enc veh)))
    encodings;
  print_endline "schema_evolution: ok"
