(* A vehicle-registry workload: the paper's motivating scenario at a
   realistic size.  Builds a registry of vehicles, manufacturers and
   presidents, keeps the indexes in sync through a Db, and compares the
   two retrieval algorithms' page reads on the query mix of Section 3.3.

     dune exec examples/vehicle_registry.exe *)

module Ps = Workload.Paper_schema
module Rng = Workload.Rng
module Value = Objstore.Value
module Query = Uindex.Query
module Index = Uindex.Index
module Exec = Uindex.Exec
module Db = Uindex.Db

let () =
  let ext = Ps.extended () in
  let b = ext.b in
  let rng = Rng.create 7 in
  let store = Objstore.Store.create b.schema in
  let db = Db.create store in

  (* registry content *)
  let presidents =
    Array.init 40 (fun i ->
        Db.insert db ~cls:b.employee
          [
            ("name", Value.Str (Printf.sprintf "President%02d" i));
            ("age", Value.Int (35 + Rng.int rng 36));
          ])
  in
  let makers =
    Array.init 25 (fun i ->
        let cls =
          Rng.pick rng
            [| b.auto_company; b.truck_company; b.japanese_auto_company |]
        in
        Db.insert db ~cls
          [
            ("name", Value.Str (Printf.sprintf "Maker%02d" i));
            ("president", Value.Ref (Rng.pick rng presidents));
          ])
  in
  let vehicle_classes = Ps.vehicle_leaf_classes ext in

  (* indexes registered up front: the Db maintains them through inserts *)
  let ch =
    Index.create_class_hierarchy (Storage.Pager.create ()) b.enc
      ~root:b.vehicle ~attr:"color"
  in
  let path =
    Index.create_path (Storage.Pager.create ()) b.enc ~head:b.vehicle
      ~refs:[ "manufactured_by"; "president" ]
      ~attr:"age"
  in
  Db.add_index db ch;
  Db.add_index db path;

  for i = 0 to 9_999 do
    ignore
      (Db.insert db
         ~cls:(Rng.pick rng vehicle_classes)
         [
           ("name", Value.Str (Printf.sprintf "V%05d" i));
           ("color", Value.Str (Rng.pick rng Ps.colors));
           ("manufactured_by", Value.Ref (Rng.pick rng makers));
         ])
  done;
  Printf.printf "registry: %d objects; color index: %d entries; path index: %d entries\n"
    (Objstore.Store.count store)
    (Index.entry_count ch) (Index.entry_count path);

  let compare_algos label idx q =
    let p = Exec.parallel idx q and f = Exec.forward idx q in
    assert (Exec.head_oids p = Exec.head_oids f);
    Printf.printf "%-55s %5d results  parallel:%4d  forward:%4d pages\n" label
      (List.length p.Exec.bindings) p.Exec.page_reads f.Exec.page_reads
  in
  print_endline "\nquery mix (parallel vs forward page reads):";
  compare_algos "red buses (subtree)" ch
    (Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree ext.bus));
  compare_algos "red or blue trucks+buses" ch
    (Query.class_hierarchy
       ~value:(V_in [ Str "Red"; Str "Blue" ])
       (P_union [ P_subtree b.truck; P_subtree ext.bus ]));
  compare_algos "compact & service autos, any color" ch
    (Query.class_hierarchy ~value:V_any
       (P_union [ P_subtree b.compact; P_subtree ext.service_auto ]));
  compare_algos "vehicles by companies with president aged 50-55" path
    (Query.path
       ~value:(V_range (Some (Int 50), Some (Int 55)))
       [
         Query.comp (P_subtree b.employee);
         Query.comp (P_subtree b.company);
         Query.comp (P_subtree b.vehicle);
       ]);
  compare_algos "trucks by Japanese auto companies (combined)" path
    (Query.path ~value:V_any
       [
         Query.comp (P_subtree b.employee);
         Query.comp (P_subtree b.japanese_auto_company);
         Query.comp (P_subtree b.truck);
       ]);
  compare_algos "makers with president aged 60+ (partial path)" path
    (Query.path
       ~value:(V_range (Some (Int 60), Some (Int 70)))
       [ Query.comp (P_subtree b.employee); Query.comp (P_subtree b.company) ]);

  (* a mid-path update: one maker replaces its president (Section 3.5) *)
  let maker = makers.(0) in
  let new_president = presidents.(1) in
  Db.set_attr db maker "president" (Value.Ref new_president);
  Db.check db;
  print_endline "\npresident replaced; indexes verified in sync";
  print_endline "vehicle_registry: ok"
