(* One workload, five index structures: U-index, CH-tree, H-tree, CG-tree
   and NIX side by side on the same class-hierarchy data, with page-read
   accounting — a miniature of the paper's Section 5 comparison plus the
   Section 4.4 qualitative comparisons.

     dune exec examples/index_shootout.exe *)

module Dg = Workload.Datagen
module Qg = Workload.Querygen
module Tb = Workload.Table
module Rng = Workload.Rng
module Value = Objstore.Value
module Query = Uindex.Query
module Exec = Uindex.Exec

let n_objects = 30_000
let n_classes = 20
let distinct_keys = 500
let reps = 25
let seed = 11

let () =
  let cfg =
    { (Dg.default_exp2 ~n_classes ~distinct_keys) with n_objects; seed }
  in
  let d = Dg.exp2 cfg in
  let entries =
    Array.to_list d.entries
    |> List.map (fun (k, cls, oid) -> (Value.Int k, cls, oid))
  in
  let classes = Array.to_list d.classes in
  let page_size = cfg.page_size in
  let ch = Baselines.Ch_tree.create (Storage.Pager.create ~page_size ()) in
  Baselines.Ch_tree.build ch entries;
  let ht =
    Baselines.H_tree.create (Storage.Pager.create ~page_size ()) ~classes
  in
  Baselines.H_tree.build ht entries;
  let nix_pager = Storage.Pager.create ~page_size () in
  let nix = Baselines.Nix.create nix_pager ~classes in
  List.iter
    (fun (v, cls, oid) -> Baselines.Nix.insert_chain nix ~value:v [ (cls, oid) ])
    entries;

  Printf.printf
    "%d objects over %d classes, %d distinct keys; %d reps per cell\n\n"
    n_objects n_classes distinct_keys reps;

  let counted pager f =
    let s = Storage.Pager.stats pager in
    Storage.Stats.reset s;
    let n = f () in
    (s.Storage.Stats.reads, n)
  in
  let run ~sets ~lo ~hi ~exact = function
    | `U ->
        let value =
          if exact then Query.V_eq (Value.Int lo)
          else Query.V_range (Some (Value.Int lo), Some (Value.Int hi))
        in
        let o =
          Exec.parallel d.uindex
            (Query.class_hierarchy ~value (Qg.union_of_classes sets))
        in
        (o.Exec.page_reads, List.length o.Exec.bindings)
    | `Ch ->
        counted (Baselines.Ch_tree.pager ch) (fun () ->
            List.length
              (if exact then Baselines.Ch_tree.exact ch ~value:(Value.Int lo) ~sets
               else
                 Baselines.Ch_tree.range ch ~lo:(Value.Int lo) ~hi:(Value.Int hi)
                   ~sets))
    | `H ->
        counted (Baselines.H_tree.pager ht) (fun () ->
            List.length
              (if exact then Baselines.H_tree.exact ht ~value:(Value.Int lo) ~sets
               else
                 Baselines.H_tree.range ht ~lo:(Value.Int lo) ~hi:(Value.Int hi)
                   ~sets))
    | `Cg ->
        counted
          (Baselines.Cg_tree.pager d.cg)
          (fun () ->
            List.length
              (if exact then Baselines.Cg_tree.exact d.cg ~value:(Value.Int lo) ~sets
               else
                 Baselines.Cg_tree.range d.cg ~lo:(Value.Int lo)
                   ~hi:(Value.Int hi) ~sets))
    | `Nix ->
        counted nix_pager (fun () ->
            List.length
              (if exact then Baselines.Nix.exact nix ~value:(Value.Int lo) ~sets
               else
                 Baselines.Nix.range nix ~lo:(Value.Int lo) ~hi:(Value.Int hi)
                   ~sets))
  in
  let structures =
    [
      ("U-index", `U);
      ("CH-tree", `Ch);
      ("H-tree", `H);
      ("CG-tree", `Cg);
      ("NIX", `Nix);
    ]
  in
  let avg ~exact ~frac ~k s =
    let rng = Rng.create (seed + k) in
    let total = ref 0 and results = ref 0 in
    for _ = 1 to reps do
      let sets = Qg.pick_sets rng Qg.Near ~classes:d.classes ~k in
      let lo, hi =
        if exact then
          let v = Qg.exact_value rng ~distinct_keys in
          (v, v)
        else Qg.range_bounds rng ~distinct_keys ~frac
      in
      let reads, n = run ~sets ~lo ~hi ~exact s in
      total := !total + reads;
      results := !results + n
    done;
    (float_of_int !total /. float_of_int reps, !results / reps)
  in
  List.iter
    (fun (label, exact, frac) ->
      let series =
        List.map
          (fun (name, s) ->
            ( name,
              List.map (fun k -> (k, fst (avg ~exact ~frac ~k s))) [ 1; 5; 10; 20 ]
            ))
          structures
      in
      print_string (Tb.render_series ~title:label ~x_label:"sets" ~series);
      print_newline ())
    [ ("exact match", true, 0.0); ("range 5%", false, 0.05) ];

  print_endline "index_shootout: ok"
