(* Quickstart: build the paper's Example 1 database, create the three
   kinds of U-index, and run the Section 3.3 queries.

     dune exec examples/quickstart.exe *)

module Schema = Oodb_schema.Schema
module Encoding = Oodb_schema.Encoding
module Value = Objstore.Value
module Store = Objstore.Store
module Query = Uindex.Query
module Index = Uindex.Index
module Exec = Uindex.Exec

let () =
  (* 1. Declare the schema: classes, the is-a hierarchy, REF attributes. *)
  let s = Schema.create () in
  let employee =
    Schema.add_class s ~name:"Employee"
      ~attrs:[ ("name", Schema.String); ("age", Schema.Int) ]
  in
  let company =
    Schema.add_class s ~name:"Company"
      ~attrs:[ ("name", Schema.String); ("president", Schema.Ref employee) ]
  in
  let vehicle =
    Schema.add_class s ~name:"Vehicle"
      ~attrs:
        [
          ("name", Schema.String);
          ("color", Schema.String);
          ("manufactured_by", Schema.Ref company);
        ]
  in
  let automobile = Schema.add_class s ~parent:vehicle ~name:"Automobile" ~attrs:[] in
  let compact = Schema.add_class s ~parent:automobile ~name:"Compact" ~attrs:[] in

  (* 2. Encode: every class gets a code; lexicographic code order = schema
     pre-order, which is what makes one B-tree serve all index kinds. *)
  let enc = Encoding.assign s in
  print_endline "Class codes (code order = pre-order):";
  Format.printf "%a@." Encoding.pp enc;

  (* 3. Populate the store. *)
  let st = Store.create s in
  let e1 =
    Store.insert st ~cls:employee
      [ ("name", Value.Str "Elena"); ("age", Value.Int 50) ]
  in
  let c1 =
    Store.insert st ~cls:company
      [ ("name", Value.Str "Fiat"); ("president", Value.Ref e1) ]
  in
  let v_of cls name color =
    Store.insert st ~cls
      [
        ("name", Value.Str name);
        ("color", Value.Str color);
        ("manufactured_by", Value.Ref c1);
      ]
  in
  let _v1 = v_of vehicle "Legacy" "White" in
  let v2 = v_of automobile "Tipo" "White" in
  let v3 = v_of automobile "Panda" "Red" in
  let v4 = v_of compact "R5" "Red" in

  (* 4. A class-hierarchy U-index on Vehicle.color. *)
  let ch =
    Index.create_class_hierarchy (Storage.Pager.create ()) enc ~root:vehicle
      ~attr:"color"
  in
  Index.build ch st;

  let show label outcome =
    Printf.printf "%-42s -> oids %s  (%d page reads)\n" label
      (String.concat ","
         (List.map string_of_int (Exec.head_oids outcome)))
      outcome.Exec.page_reads
  in
  show "red vehicles (whole hierarchy)"
    (Exec.parallel ch
       (Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree vehicle)));
  show "red automobiles + subclasses"
    (Exec.parallel ch
       (Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree automobile)));
  assert (
    Exec.head_oids
      (Exec.parallel ch
         (Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree automobile)))
    = [ v3; v4 ]);

  (* 5. A path U-index on Vehicle.manufactured_by.president.age — the same
     structure also answers combined class/path queries. *)
  let path =
    Index.create_path (Storage.Pager.create ()) enc ~head:vehicle
      ~refs:[ "manufactured_by"; "president" ]
      ~attr:"age"
  in
  Index.build path st;
  show "vehicles with president aged 50"
    (Exec.parallel path
       (Query.path ~value:(V_eq (Int 50))
          [
            Query.comp (P_subtree employee);
            Query.comp (P_subtree company);
            Query.comp (P_subtree vehicle);
          ]));
  show "automobiles only, president aged 50"
    (Exec.parallel path
       (Query.path ~value:(V_eq (Int 50))
          [
            Query.comp (P_subtree employee);
            Query.comp (P_subtree company);
            Query.comp (P_subtree automobile);
          ]));
  assert (
    Exec.head_oids
      (Exec.parallel path
         (Query.path ~value:(V_eq (Int 50))
            [
              Query.comp (P_subtree employee);
              Query.comp (P_subtree company);
              Query.comp (P_subtree automobile);
            ]))
    = [ v2; v3; v4 ]);
  print_endline "quickstart: ok"
