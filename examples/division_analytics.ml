(* Corporate analytics over multiple REF paths sharing one index
   (Section 3.3, "Multiple Paths"): the Vehicle and Division paths both
   end in Company.president.age, so one U-index answers "everything a
   company with a president of age X makes or owns" — vehicles and
   divisions together, clustered by the shared employee/company prefix.
   Also shows the schema stored in an index of the same kind
   (Section 4.1) and the textual query syntax (Section 3.4).

     dune exec examples/division_analytics.exe *)

module Ps = Workload.Paper_schema
module Rng = Workload.Rng
module Schema = Oodb_schema.Schema
module Value = Objstore.Value
module Store = Objstore.Store
module Query = Uindex.Query
module Qparse = Uindex.Qparse
module Index = Uindex.Index
module Exec = Uindex.Exec
module Si = Uindex.Schema_index

let () =
  let b = Ps.base () in
  let rng = Rng.create 23 in
  let store = Store.create b.schema in

  (* people, companies, cities *)
  let presidents =
    Array.init 30 (fun i ->
        Store.insert store ~cls:b.employee
          [
            ("name", Value.Str (Printf.sprintf "P%02d" i));
            ("age", Value.Int (40 + Rng.int rng 31));
          ])
  in
  let companies =
    Array.init 15 (fun i ->
        Store.insert store
          ~cls:(Rng.pick rng [| b.auto_company; b.truck_company; b.japanese_auto_company |])
          [
            ("name", Value.Str (Printf.sprintf "Maker%02d" i));
            ("president", Value.Ref (Rng.pick rng presidents));
          ])
  in
  let cities =
    Array.init 5 (fun i ->
        Store.insert store ~cls:b.city
          [ ("name", Value.Str (Printf.sprintf "City%d" i)) ])
  in
  for i = 0 to 99 do
    ignore
      (Store.insert store ~cls:b.division
         [
           ("name", Value.Str (Printf.sprintf "Division%03d" i));
           ("belongs_to", Value.Ref (Rng.pick rng companies));
           ("located_in", Value.Ref (Rng.pick rng cities));
         ])
  done;
  for i = 0 to 999 do
    ignore
      (Store.insert store
         ~cls:(Rng.pick rng [| b.vehicle; b.automobile; b.compact; b.truck |])
         [
           ("name", Value.Str (Printf.sprintf "V%04d" i));
           ("color", Value.Str (Rng.pick rng Ps.colors));
           ("manufactured_by", Value.Ref (Rng.pick rng companies));
         ])
  done;
  Printf.printf "store: %d objects\n" (Store.count store);

  (* ONE index, TWO paths ending at Employee.age *)
  let idx =
    Index.create_path (Storage.Pager.create ()) b.enc ~head:b.vehicle
      ~refs:[ "manufactured_by"; "president" ]
      ~attr:"age"
  in
  Index.add_path idx ~head:b.division ~refs:[ "belongs_to"; "president" ]
    ~attr:"age";
  Index.build idx store;
  Printf.printf "multi-path index: %d entries over %d paths\n"
    (Index.entry_count idx)
    (List.length (Index.paths idx));
  let cs = Btree.compression_stats (Index.tree idx) in
  Printf.printf "front compression keeps %d of %d key bytes (%.0f%%)\n"
    cs.Btree.stored_key_bytes cs.Btree.raw_key_bytes
    (100.0
    *. float_of_int cs.Btree.stored_key_bytes
    /. float_of_int cs.Btree.raw_key_bytes);

  (* the headline query: both heads at once *)
  let both_pat = Query.P_union [ P_subtree b.division; P_subtree b.vehicle ] in
  let q age_lo age_hi =
    Query.path
      ~value:(V_range (Some (Int age_lo), Some (Int age_hi)))
      [
        Query.comp (P_subtree b.employee);
        Query.comp (P_subtree b.company);
        Query.comp both_pat;
      ]
  in
  let o = Exec.parallel idx (q 65 70) in
  let schema = b.schema in
  let by_class =
    List.fold_left
      (fun acc bnd ->
        match List.rev bnd.Exec.comps with
        | (cls, _) :: _ ->
            let root =
              if Schema.is_subclass schema ~sub:cls ~super:b.division then
                "divisions"
              else "vehicles"
            in
            (root, 1) :: acc
        | [] -> acc)
      [] o.Exec.bindings
  in
  let count label =
    List.length (List.filter (fun (l, _) -> l = label) by_class)
  in
  Printf.printf
    "companies with president aged 65-70 own %d divisions and make %d \
     vehicles (%d page reads, one query)\n"
    (count "divisions") (count "vehicles") o.Exec.page_reads;

  (* compare with two single-path indexes: the shared-prefix index does
     the combined retrieval with fewer total page reads *)
  let veh_only =
    Index.create_path (Storage.Pager.create ()) b.enc ~head:b.vehicle
      ~refs:[ "manufactured_by"; "president" ]
      ~attr:"age"
  in
  Index.build veh_only store;
  let div_only =
    Index.create_path (Storage.Pager.create ()) b.enc ~head:b.division
      ~refs:[ "belongs_to"; "president" ]
      ~attr:"age"
  in
  Index.build div_only store;
  let one_path idx head =
    Exec.parallel idx
      (Query.path
         ~value:(V_range (Some (Int 65), Some (Int 70)))
         [
           Query.comp (P_subtree b.employee);
           Query.comp (P_subtree b.company);
           Query.comp (P_subtree head);
         ])
  in
  let ov = one_path veh_only b.vehicle and od = one_path div_only b.division in
  Printf.printf
    "same retrieval via two separate indexes: %d + %d = %d page reads\n"
    ov.Exec.page_reads od.Exec.page_reads
    (ov.Exec.page_reads + od.Exec.page_reads);

  (* the same query in the paper's textual syntax *)
  let parsed =
    Qparse.parse schema "([65-70], Employee*, Company*, [Division* | Vehicle*])"
  in
  let o' = Exec.parallel idx parsed in
  assert (Exec.head_oids o' = Exec.head_oids o);
  Printf.printf "textual form agrees: %s\n" (Qparse.to_syntax schema parsed);

  (* schema relations live in the same kind of index (Section 4.1) *)
  let si = Si.create (Storage.Pager.create ()) b.enc in
  Si.build si;
  let subtree, reads = Si.subtree si b.company in
  Printf.printf "schema index: Company subtree = {%s} in %d page reads\n"
    (String.concat ", " (List.map (Schema.name schema) subtree))
    reads;
  let refs, reads = Si.refs_to si b.company in
  Printf.printf "schema index: Company is referenced by {%s} in %d page reads\n"
    (String.concat ", "
       (List.map (fun (a, c) -> Schema.name schema c ^ "." ^ a) refs))
    reads;
  print_endline "division_analytics: ok"
